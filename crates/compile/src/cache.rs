//! The thread-safe, memoizing artifact store.
//!
//! A sweep fans (workload × model × config) points out over worker
//! threads; many points share a compile key (the same schedule measured
//! under several machine configurations, engines or penalties), and every
//! model of one workload shares a training profile.  The cache memoizes
//! both levels — compiled artifacts keyed by the full request, edge
//! profiles keyed by the training program — behind sharded mutexes.
//!
//! # Concurrency discipline
//!
//! Lookups are **single-flight**: the first thread to miss a key installs
//! a pending marker and compiles with the shard unlocked; concurrent
//! requests for the same key block on the shard's condvar until the
//! artifact lands, rather than compiling a duplicate.  This keeps the
//! hit/miss counters deterministic — a sweep with N distinct points
//! records exactly N misses at *any* `--jobs` count — which CI relies on.
//! A failed compile removes the marker and wakes the waiters, who retry
//! (and re-fail) themselves.
//!
//! Eviction is FIFO per shard, only used by bounded caches (the fuzz
//! harness caps its cache so million-case sweeps stay in memory); the
//! experiment drivers use unbounded caches whose lifetime is one sweep.

use crate::CompiledArtifact;
use psb_scalar::EdgeProfile;
use psb_telemetry::Telemetry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shard count; keys are avalanched, so low bits select uniformly.
pub const SHARD_COUNT: usize = 8;
const SHARDS: usize = SHARD_COUNT;

/// Per-shard telemetry histogram names, fixed at compile time so the
/// hot path never allocates a metric name.  The array type pins the
/// literal count to [`SHARD_COUNT`].
macro_rules! shard_names {
    ($prefix:literal) => {
        [
            concat!($prefix, "0"),
            concat!($prefix, "1"),
            concat!($prefix, "2"),
            concat!($prefix, "3"),
            concat!($prefix, "4"),
            concat!($prefix, "5"),
            concat!($prefix, "6"),
            concat!($prefix, "7"),
        ]
    };
}

static ARTIFACT_LOCK_WAIT: [&str; SHARDS] = shard_names!("cache.artifact.lock_wait_ns.shard");
static ARTIFACT_FLIGHT_WAIT: [&str; SHARDS] =
    shard_names!("cache.artifact.singleflight_wait_ns.shard");
static PROFILE_LOCK_WAIT: [&str; SHARDS] = shard_names!("cache.profile.lock_wait_ns.shard");
static PROFILE_FLIGHT_WAIT: [&str; SHARDS] =
    shard_names!("cache.profile.singleflight_wait_ns.shard");

#[derive(Debug)]
enum Slot<V> {
    /// A thread is compiling this key; wait on the shard condvar.
    Pending,
    /// The finished value.
    Ready(V),
}

#[derive(Debug)]
struct ShardState<V> {
    map: HashMap<u64, Slot<V>>,
    /// Ready keys in completion order (FIFO eviction victims).
    order: VecDeque<u64>,
}

#[derive(Debug)]
struct Shard<V> {
    state: Mutex<ShardState<V>>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A sharded, single-flight memo table.
#[derive(Debug)]
struct SingleFlight<V> {
    shards: Vec<Shard<V>>,
    /// Per-shard capacity (`None` = unbounded).
    shard_capacity: Option<usize>,
}

impl<V: Clone> SingleFlight<V> {
    fn new(capacity: Option<usize>) -> SingleFlight<V> {
        SingleFlight {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    }),
                    ready: Condvar::new(),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    evictions: AtomicU64::new(0),
                })
                .collect(),
            shard_capacity: capacity.map(|c| c.div_ceil(SHARDS).max(1)),
        }
    }

    /// Per-shard counter snapshot (shard index = array index).
    fn shard_stats(&self) -> [ShardStats; SHARDS] {
        let mut out = [ShardStats::default(); SHARDS];
        for (stats, shard) in out.iter_mut().zip(&self.shards) {
            *stats = ShardStats {
                hits: shard.hits.load(Ordering::Relaxed),
                misses: shard.misses.load(Ordering::Relaxed),
                evictions: shard.evictions.load(Ordering::Relaxed),
                entries: shard
                    .state
                    .lock()
                    .expect("cache shard poisoned")
                    .order
                    .len() as u64,
            };
        }
        out
    }

    fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    fn misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.misses.load(Ordering::Relaxed))
            .sum()
    }

    fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }

    fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("cache shard poisoned").order.len() as u64)
            .sum()
    }

    /// Returns the memoized value for `key`, or runs `compute` exactly
    /// once per key across all threads (modulo failures and eviction).
    ///
    /// Contention telemetry goes through the host-only channels: how
    /// long this thread waited for the shard mutex (`lock_wait`) and,
    /// when it found a `Pending` marker, how long it parked on the
    /// condvar behind another thread's compile (`flight_wait`).  Both
    /// are scheduling-dependent by nature, so a deterministic-mode
    /// recorder drops them; a `NullTelemetry` carrier compiles all of
    /// this to the bare lock operations.
    fn get_or_compute<E, T: Telemetry>(
        &self,
        key: u64,
        tel: &T,
        lock_wait: &[&'static str; SHARDS],
        flight_wait: &[&'static str; SHARDS],
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        let idx = key as usize % SHARDS;
        let shard = &self.shards[idx];
        let lock_start = tel.now_ns();
        let mut st = shard.state.lock().expect("cache shard poisoned");
        tel.observe_host(lock_wait[idx], tel.now_ns().saturating_sub(lock_start));
        let mut wait_start = None;
        loop {
            match st.map.get(&key) {
                Some(Slot::Ready(v)) => {
                    if let Some(start) = wait_start {
                        tel.observe_host(flight_wait[idx], tel.now_ns().saturating_sub(start));
                    }
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(v.clone());
                }
                Some(Slot::Pending) => {
                    wait_start.get_or_insert_with(|| tel.now_ns());
                    st = shard.ready.wait(st).expect("cache shard poisoned");
                }
                None => break,
            }
        }
        if let Some(start) = wait_start {
            // Waited behind a compile that failed; this thread retries.
            tel.observe_host(flight_wait[idx], tel.now_ns().saturating_sub(start));
        }
        st.map.insert(key, Slot::Pending);
        shard.misses.fetch_add(1, Ordering::Relaxed);
        drop(st);

        let result = compute();

        let lock_start = tel.now_ns();
        let mut st = shard.state.lock().expect("cache shard poisoned");
        tel.observe_host(lock_wait[idx], tel.now_ns().saturating_sub(lock_start));
        match result {
            Ok(v) => {
                st.map.insert(key, Slot::Ready(v.clone()));
                st.order.push_back(key);
                if let Some(cap) = self.shard_capacity {
                    // The key just pushed is never the front while another
                    // entry exists, so the insert itself survives.
                    while st.order.len() > cap {
                        let oldest = st.order.pop_front().expect("len > cap >= 1");
                        if st.map.remove(&oldest).is_some() {
                            shard.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                shard.ready.notify_all();
                Ok(v)
            }
            Err(e) => {
                st.map.remove(&key);
                shard.ready.notify_all();
                Err(e)
            }
        }
    }
}

/// A training profile memo entry: the profile plus what producing it
/// cost, so cache-served compiles report the original stage timing.
#[derive(Clone, Debug)]
pub(crate) struct ProfileEntry {
    /// The recorded edge profile.
    pub profile: EdgeProfile,
    /// Wall seconds of the scalar training run (rounded).
    pub seconds: f64,
    /// Dynamic branches the run recorded.
    pub branches: u64,
}

/// Thread-safe memoizing store for [`CompiledArtifact`]s and training
/// profiles, shared by all workers of a sweep.
#[derive(Debug)]
pub struct ArtifactCache {
    artifacts: SingleFlight<Arc<CompiledArtifact>>,
    profiles: SingleFlight<Arc<ProfileEntry>>,
}

impl ArtifactCache {
    /// An unbounded cache (the experiment drivers: one sweep, one cache).
    pub fn new() -> ArtifactCache {
        ArtifactCache {
            artifacts: SingleFlight::new(None),
            profiles: SingleFlight::new(None),
        }
    }

    /// A cache holding at most ~`capacity` artifacts (FIFO eviction), for
    /// open-ended consumers like the fuzz harness.
    pub fn with_capacity(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            artifacts: SingleFlight::new(Some(capacity)),
            profiles: SingleFlight::new(Some(capacity)),
        }
    }

    /// Snapshot of the hit/miss/eviction counters, with the artifact
    /// side's per-shard breakdown.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.artifacts.hits(),
            misses: self.artifacts.misses(),
            evictions: self.artifacts.evictions(),
            entries: self.artifacts.entries(),
            profile_hits: self.profiles.hits(),
            profile_misses: self.profiles.misses(),
            shards: self.artifacts.shard_stats(),
        }
    }

    pub(crate) fn artifact<E, T: Telemetry>(
        &self,
        key: u64,
        tel: &T,
        compute: impl FnOnce() -> Result<Arc<CompiledArtifact>, E>,
    ) -> Result<Arc<CompiledArtifact>, E> {
        self.artifacts.get_or_compute(
            key,
            tel,
            &ARTIFACT_LOCK_WAIT,
            &ARTIFACT_FLIGHT_WAIT,
            compute,
        )
    }

    pub(crate) fn profile<E, T: Telemetry>(
        &self,
        key: u64,
        tel: &T,
        compute: impl FnOnce() -> Result<Arc<ProfileEntry>, E>,
    ) -> Result<Arc<ProfileEntry>, E> {
        self.profiles
            .get_or_compute(key, tel, &PROFILE_LOCK_WAIT, &PROFILE_FLIGHT_WAIT, compute)
    }
}

impl Default for ArtifactCache {
    fn default() -> ArtifactCache {
        ArtifactCache::new()
    }
}

/// Counter snapshot surfaced by `repro compile` / the bench cache check
/// (rendered to JSON by the eval crate, like an `ObsReport`).
///
/// With single-flight lookups and no eviction pressure, `misses` equals
/// the number of *distinct* compile requests regardless of thread count —
/// the deterministic property CI asserts on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Artifact requests served from the cache.
    pub hits: u64,
    /// Artifact requests that compiled (one per distinct key).
    pub misses: u64,
    /// Artifacts evicted by a bounded cache's FIFO.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: u64,
    /// Training-profile stage requests served from the memo.
    pub profile_hits: u64,
    /// Training-profile stage requests that ran the scalar machine.
    pub profile_misses: u64,
    /// The artifact side's counters broken down by shard (index =
    /// shard number).  Which shard a key lands in is a stable function
    /// of the key, so this breakdown is as jobs-deterministic as the
    /// totals.
    pub shards: [ShardStats; SHARD_COUNT],
}

/// One shard's slice of the artifact cache counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Requests this shard served from its map.
    pub hits: u64,
    /// Requests this shard compiled.
    pub misses: u64,
    /// Entries this shard's FIFO evicted.
    pub evictions: u64,
    /// Entries currently resident in this shard.
    pub entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_telemetry::{NullTelemetry, Recorder};

    fn get<V: Clone, E>(
        sf: &SingleFlight<V>,
        key: u64,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        sf.get_or_compute(
            key,
            &NullTelemetry,
            &ARTIFACT_LOCK_WAIT,
            &ARTIFACT_FLIGHT_WAIT,
            compute,
        )
    }

    #[test]
    fn single_flight_computes_each_key_once() {
        let sf: SingleFlight<u64> = SingleFlight::new(None);
        let computed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for key in 0..16u64 {
                        let v = get::<_, ()>(&sf, key, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window so waiters really
                            // do find a Pending marker.
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            Ok(key * 10)
                        })
                        .unwrap();
                        assert_eq!(v, key * 10);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 16, "duplicate compute");
        assert_eq!(sf.misses(), 16);
        assert_eq!(sf.hits(), 8 * 16 - 16);
        // Shard counters sum to the totals and attribute by key.
        let shards = sf.shard_stats();
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), 16);
        assert_eq!(shards.iter().map(|s| s.entries).sum::<u64>(), 16);
        assert_eq!(shards[3].misses, 2, "keys 3 and 11 land in shard 3");
    }

    #[test]
    fn failures_release_the_pending_marker() {
        let sf: SingleFlight<u64> = SingleFlight::new(None);
        assert_eq!(get(&sf, 7, || Err::<u64, &str>("boom")), Err("boom"));
        // The key is retryable, not wedged.
        assert_eq!(get::<_, &str>(&sf, 7, || Ok(42)), Ok(42));
        assert_eq!(get::<_, &str>(&sf, 7, || Ok(0)), Ok(42));
    }

    #[test]
    fn bounded_cache_evicts_fifo() {
        let sf: SingleFlight<u64> = SingleFlight::new(Some(SHARDS));
        // Shard capacity is 1: a second distinct key in one shard evicts
        // the first.  Keys k and k + SHARDS land in the same shard.
        get::<_, ()>(&sf, 3, || Ok(1)).unwrap();
        get::<_, ()>(&sf, 3 + SHARDS as u64, || Ok(2)).unwrap();
        assert_eq!(sf.evictions(), 1);
        // The evicted key recomputes.
        get::<_, ()>(&sf, 3, || Ok(10)).unwrap();
        assert_eq!(sf.misses(), 3);
        assert_eq!(sf.entries(), 1);
        // Both evictions (key 3 by key 11, then key 11 by the refilled
        // key 3) happened in shard 3.
        assert_eq!(sf.shard_stats()[3].evictions, 2);
        assert_eq!(sf.evictions(), 2);
    }

    #[test]
    fn contended_waits_reach_host_telemetry_only() {
        let rec = Recorder::new(false);
        let sf: SingleFlight<u64> = SingleFlight::new(None);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let v = sf
                        .get_or_compute::<(), _>(
                            9,
                            &rec,
                            &ARTIFACT_LOCK_WAIT,
                            &ARTIFACT_FLIGHT_WAIT,
                            || {
                                std::thread::sleep(std::time::Duration::from_millis(5));
                                Ok(90)
                            },
                        )
                        .unwrap();
                    assert_eq!(v, 90);
                });
            }
        });
        let rep = rec.report();
        // Key 9 -> shard 1.  Lock waits are observed on every
        // acquisition; single-flight waits only by threads that really
        // parked behind the Pending marker (0 to 3 of the losers,
        // depending on scheduling).
        let lock = rep
            .histograms
            .iter()
            .find(|(n, _)| n == "cache.artifact.lock_wait_ns.shard1")
            .expect("lock-wait histogram");
        assert!(lock.1.count >= 4);
        if let Some(flight) = rep
            .histograms
            .iter()
            .find(|(n, _)| n == "cache.artifact.singleflight_wait_ns.shard1")
        {
            assert!(flight.1.count <= 3);
        }
        // In deterministic mode the same workload records nothing.
        let det = Recorder::new(true);
        let sf2: SingleFlight<u64> = SingleFlight::new(None);
        sf2.get_or_compute::<(), _>(9, &det, &ARTIFACT_LOCK_WAIT, &ARTIFACT_FLIGHT_WAIT, || {
            Ok(1)
        })
        .unwrap();
        assert!(det.report().histograms.is_empty());
    }
}
