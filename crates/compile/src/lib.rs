//! The staged compilation pipeline behind every driver.
//!
//! The paper splits its mechanism into a compiler half (region formation,
//! predication, scheduling — Sec. 4) and a machine half (predicated state
//! buffering — Sec. 3).  This crate owns the compiler half as one
//! explicit, individually-timed pipeline:
//!
//! ```text
//!   ScalarProgram ──Stage::Profile──▶ EdgeProfile
//!                 ──Stage::Schedule─▶ VliwProgram + ScheduleStats
//!                 ──Stage::Decode───▶ DecodedProgram (dense issue arena)
//!                                  ─▶ Arc<CompiledArtifact>
//! ```
//!
//! [`Stage::Profile`] runs the scalar training program to collect an
//! [`EdgeProfile`] (or adopts one the caller already has, via
//! [`ProfileSource::Provided`]); [`Stage::Schedule`] invokes the
//! model-specific VLIW scheduler; [`Stage::Decode`] lowers the schedule
//! into the pre-decoded arena the machine's fast issue paths read —
//! including the generated-dispatch indices (per-slot handler numbers and
//! per-word issue classes) that drive the table-dispatched engine.  The
//! product is an immutable [`CompiledArtifact`] carrying everything a
//! consumer needs to *run* the program — including the decoded arena, so
//! machine construction no longer re-lowers per run — plus per-stage
//! wall timings ([`CompileStats`]) and a stable content hash.
//!
//! [`compile`] memoizes through a shared [`ArtifactCache`] keyed by the
//! request's content ([`CompileRequest::key`]): a (workload × model ×
//! config) sweep compiles each distinct point exactly once regardless of
//! how many `parallel_map` workers race on it.  [`compile_fresh`] is the
//! uncached differential oracle — the proptest suite holds cache-served
//! artifacts byte-equal to fresh ones.

#![warn(missing_docs)]

mod cache;
mod hash;
mod store;

pub use cache::{ArtifactCache, CacheStats, ShardStats, SHARD_COUNT};
pub use hash::{hash_fields, DebugHasher};
pub use store::{
    decode_artifact, encode_artifact, DiskStore, StoreError, StoreStats, STORE_VERSION,
};

use cache::ProfileEntry;
use psb_core::{
    BatchReport, BatchedMachine, DecodedProgram, MachineConfig, TraceSink, VliwError, VliwMachine,
    VliwResult,
};
use psb_isa::{ScalarProgram, VliwProgram};
use psb_scalar::{EdgeProfile, ScalarConfig, ScalarMachine};
use psb_sched::{schedule, SchedConfig, SchedError, ScheduleStats};
use psb_telemetry::{round_us, NullTelemetry, Telemetry};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One stage of the compilation pipeline, in execution order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Scalar training run producing the [`EdgeProfile`].
    Profile,
    /// Profile-guided VLIW scheduling for one model.
    Schedule,
    /// Lowering the schedule into the machine's pre-decoded issue arena.
    Decode,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 3] = [Stage::Profile, Stage::Schedule, Stage::Decode];

    /// The stage's stable lowercase name (used as a JSON/report key stem).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Profile => "profile",
            Stage::Schedule => "schedule",
            Stage::Decode => "decode",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where the scheduling profile comes from.
///
/// The paper's methodology trains on one input and evaluates on another;
/// [`ProfileSource::Train`] captures that split.  Consumers that already
/// ran the scalar machine for other reasons (the fuzz harness's golden
/// run, the bench kernels' cross-check run) hand the byproduct profile
/// over via [`ProfileSource::Provided`] instead of paying for a second
/// scalar execution.
#[derive(Clone, Debug)]
pub enum ProfileSource<'a> {
    /// Run this training program under this configuration and use the
    /// recorded edge profile.
    Train {
        /// The training program (usually the same workload at a different
        /// seed than the evaluated program).
        program: &'a ScalarProgram,
        /// Scalar machine configuration for the training run.
        config: ScalarConfig,
    },
    /// Use a profile the caller already collected.
    Provided(&'a EdgeProfile),
}

/// A complete description of one compilation: the program to schedule,
/// the profile to guide it, and the scheduling configuration.
///
/// Identity for caching is the *content* of these three — see
/// [`CompileRequest::key`].
#[derive(Clone, Debug)]
pub struct CompileRequest<'a> {
    /// The scalar program to compile.
    pub program: &'a ScalarProgram,
    /// The profile guiding region formation and branch prediction.
    pub profile: ProfileSource<'a>,
    /// The model and machine-shape parameters for the scheduler.
    pub sched: SchedConfig,
}

impl CompileRequest<'_> {
    /// The request's content-derived cache key.
    ///
    /// Two requests collide iff their program, profile source and
    /// scheduling configuration render identically — all three types have
    /// deterministic `Debug` output (plain scalars, `Vec`s and
    /// `BTreeSet`s), so the key is stable across runs, hosts and thread
    /// counts.  The machine configuration is deliberately *not* part of
    /// the key: the same artifact serves every engine and penalty setting.
    pub fn key(&self) -> u64 {
        let mut h = DebugHasher::new();
        h.field(&"compile-request-v1");
        h.field(self.program);
        match &self.profile {
            ProfileSource::Train { program, config } => {
                h.field(&"train");
                h.field(program);
                h.field(config);
            }
            ProfileSource::Provided(profile) => {
                h.field(&"provided");
                h.field(profile);
            }
        }
        h.field(&self.sched);
        h.finish()
    }

    /// The memo key of the profile stage alone (training program ×
    /// scalar configuration), shared by every model compiled from the
    /// same training run.
    fn profile_key(program: &ScalarProgram, config: &ScalarConfig) -> u64 {
        let mut h = DebugHasher::new();
        h.field(&"profile-stage-v1");
        h.field(program);
        h.field(config);
        h.finish()
    }
}

/// A failed compilation, tagged with the stage that failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The scalar training run failed (fault or cycle limit).
    Profile(String),
    /// The scheduler rejected its own output.
    Schedule(SchedError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Profile(m) => write!(f, "profile stage: {m}"),
            CompileError::Schedule(e) => write!(f, "schedule stage: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<SchedError> for CompileError {
    fn from(e: SchedError) -> CompileError {
        CompileError::Schedule(e)
    }
}

/// Per-stage costs and sizes of one compilation.
///
/// Wall timings are rounded to microseconds (matching the eval crate's
/// reporting precision) and describe the run that *produced* the
/// artifact: a cache-served artifact reports the original compile's
/// timings, and a [`ProfileSource::Provided`] profile costs `0.0` —
/// its collection was paid for elsewhere.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CompileStats {
    /// Wall seconds of the scalar training run (0 for provided profiles).
    pub profile_seconds: f64,
    /// Wall seconds of the scheduler.
    pub schedule_seconds: f64,
    /// Wall seconds of the decode lowering.
    pub decode_seconds: f64,
    /// Dynamic branches recorded in the profile.
    pub profile_branches: u64,
    /// VLIW words in the scheduled program.
    pub words: usize,
    /// Total slots in the scheduled program.
    pub slots: usize,
}

impl CompileStats {
    /// The wall seconds spent in `stage`.
    pub fn seconds_of(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Profile => self.profile_seconds,
            Stage::Schedule => self.schedule_seconds,
            Stage::Decode => self.decode_seconds,
        }
    }
}

/// The immutable product of a compilation.
///
/// Bundles everything downstream consumers need: the profile that guided
/// scheduling, the scheduled program with its static statistics, the
/// pre-decoded issue arena (shared via `Arc`, so machines borrow it
/// instead of re-lowering), per-stage [`CompileStats`], and a stable
/// content hash over the semantic payload.
#[derive(Clone, Debug)]
pub struct CompiledArtifact {
    /// The [`CompileRequest::key`] this artifact answers.
    pub request_key: u64,
    /// Content hash over program + profile + scheduling configuration
    /// (including resources) — stable across runs and hosts; excludes
    /// the host-dependent [`CompileStats`].
    pub content_hash: u64,
    /// The profile that guided scheduling.
    pub profile: EdgeProfile,
    /// The scheduled VLIW program.
    pub program: VliwProgram,
    /// Static schedule statistics (words, regions, op mix, utilisation).
    pub sched_stats: ScheduleStats,
    /// The pre-decoded issue arena, decoded exactly once per artifact.
    pub decoded: Arc<DecodedProgram>,
    /// Per-stage costs of the compile that produced this artifact.
    pub stats: CompileStats,
}

impl CompiledArtifact {
    /// Runs the artifact's program on a machine that borrows the
    /// pre-decoded arena.
    ///
    /// # Errors
    ///
    /// See [`VliwMachine::run_program_decoded`].
    pub fn run(&self, cfg: MachineConfig) -> Result<VliwResult, VliwError> {
        VliwMachine::run_program_decoded(&self.program, Arc::clone(&self.decoded), cfg)
    }

    /// Runs the artifact's program feeding `sink`, returning the result
    /// together with the sink.
    ///
    /// # Errors
    ///
    /// See [`VliwMachine::run_with_sink_decoded`].
    pub fn run_with_sink<S: TraceSink>(
        &self,
        cfg: MachineConfig,
        sink: S,
    ) -> Result<(VliwResult, S), VliwError> {
        VliwMachine::run_with_sink_decoded(&self.program, Arc::clone(&self.decoded), cfg, sink)
    }

    /// Runs the artifact's program under every configuration in `cfgs`
    /// at once on the batched lockstep engine: one shared decoded arena,
    /// one admission pass per distinct width/resource pair, per-lane
    /// default [`psb_core::EventLog`] sinks.  This is the
    /// one-artifact → many-configs API the content-addressed cache key
    /// was designed for (it deliberately excludes `MachineConfig`).
    ///
    /// Lane failures are per-lane values in the report, never an `Err`
    /// of the whole batch; each lane's outcome is byte-equal to what
    /// [`run`](Self::run) would return for the same configuration.
    pub fn run_batch(&self, cfgs: &[MachineConfig]) -> BatchReport<psb_core::EventLog> {
        BatchedMachine::new(&self.program, Arc::clone(&self.decoded), cfgs).run()
    }

    /// Like [`run_batch`](Self::run_batch), but with one caller-chosen
    /// [`TraceSink`] per lane.
    pub fn run_batch_with_sinks<S: TraceSink>(
        &self,
        lanes: Vec<(MachineConfig, S)>,
    ) -> BatchReport<S> {
        BatchedMachine::with_sinks(&self.program, Arc::clone(&self.decoded), lanes).run()
    }

    /// Whether two artifacts carry identical semantic content (hash, key,
    /// profile, program, schedule stats and decoded arena), ignoring the
    /// host-dependent stage timings.  This is the oracle predicate:
    /// cache-served and freshly compiled artifacts must satisfy it.
    pub fn same_content(&self, other: &CompiledArtifact) -> bool {
        self.request_key == other.request_key
            && self.content_hash == other.content_hash
            && self.profile == other.profile
            && self.program == other.program
            && self.sched_stats == other.sched_stats
            && *self.decoded == *other.decoded
            && self.stats.profile_branches == other.stats.profile_branches
            && self.stats.words == other.stats.words
            && self.stats.slots == other.stats.slots
    }

    /// The content hash as a fixed-width hex string for reports.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash)
    }
}

/// Runs the profile stage uncached, recording a `Stage::Profile` span
/// and a `compile.profile_ns` sample when a training run actually
/// happens (provided profiles cost nothing and record nothing).
fn profile_stage<T: Telemetry>(
    source: &ProfileSource<'_>,
    tel: &T,
) -> Result<ProfileEntry, CompileError> {
    match source {
        ProfileSource::Train { program, config } => {
            let _sp = tel.span("compile", || {
                format!(
                    "profile:{:016x}",
                    CompileRequest::profile_key(program, config)
                )
            });
            let start = Instant::now();
            let result = ScalarMachine::new(program, config.clone())
                .run()
                .map_err(|e| CompileError::Profile(e.to_string()))?;
            let elapsed = start.elapsed();
            tel.observe("compile.profile_ns", elapsed.as_nanos() as u64);
            let seconds = round_us(elapsed.as_secs_f64());
            let branches = result.edge_profile.total();
            Ok(ProfileEntry {
                profile: result.edge_profile,
                seconds,
                branches,
            })
        }
        ProfileSource::Provided(profile) => Ok(ProfileEntry {
            profile: (*profile).clone(),
            seconds: 0.0,
            branches: profile.total(),
        }),
    }
}

/// Runs the schedule and decode stages over a resolved profile and
/// assembles the artifact, with one span and one `compile.*_ns` sample
/// per stage.  Both stages run only on an artifact-cache miss, so the
/// record counts are jobs-deterministic.
fn finish_compile<T: Telemetry>(
    req: &CompileRequest<'_>,
    entry: &ProfileEntry,
    tel: &T,
) -> Result<CompiledArtifact, CompileError> {
    let request_key = req.key();

    let sp = tel.span("compile", || format!("schedule:{request_key:016x}"));
    let start = Instant::now();
    let program = schedule(req.program, &entry.profile, &req.sched)?;
    let elapsed = start.elapsed();
    drop(sp);
    tel.observe("compile.schedule_ns", elapsed.as_nanos() as u64);
    let schedule_seconds = round_us(elapsed.as_secs_f64());

    let sp = tel.span("compile", || format!("decode:{request_key:016x}"));
    let start = Instant::now();
    let decoded = Arc::new(DecodedProgram::decode(&program));
    let elapsed = start.elapsed();
    drop(sp);
    tel.observe("compile.decode_ns", elapsed.as_nanos() as u64);
    let decode_seconds = round_us(elapsed.as_secs_f64());

    let sched_stats = ScheduleStats::analyze(&program);

    let mut h = DebugHasher::new();
    h.field(&"artifact-v1");
    h.field(&program);
    h.field(&entry.profile);
    h.field(&req.sched);
    h.field(&req.sched.resources);
    let content_hash = h.finish();

    Ok(CompiledArtifact {
        request_key,
        content_hash,
        stats: CompileStats {
            profile_seconds: entry.seconds,
            schedule_seconds,
            decode_seconds,
            profile_branches: entry.branches,
            words: program.words.len(),
            slots: decoded.slots.len(),
        },
        profile: entry.profile.clone(),
        program,
        sched_stats,
        decoded,
    })
}

/// Compiles `req` through the shared cache.
///
/// The artifact lookup is single-flight: across every thread sharing
/// `cache`, each distinct request compiles exactly once and every other
/// caller receives the same `Arc`.  The profile stage is memoized
/// separately (keyed by training program × scalar configuration), so the
/// seven models of one workload share a single scalar training run even
/// on their first, artifact-missing compile.
///
/// # Errors
///
/// [`CompileError`] from whichever stage failed.  Failures are not
/// cached; a later identical request retries the compile.
pub fn compile(
    req: &CompileRequest<'_>,
    cache: &ArtifactCache,
) -> Result<Arc<CompiledArtifact>, CompileError> {
    compile_with(req, cache, &NullTelemetry)
}

/// [`compile`] with host telemetry threaded through: stage spans and
/// `compile.*_ns` histograms on cache misses (jobs-deterministic
/// counts), shard lock-wait and single-flight-wait histograms on every
/// lookup (host-only, dropped in deterministic mode).
///
/// # Errors
///
/// [`CompileError`] from whichever stage failed.  Failures are not
/// cached; a later identical request retries the compile.
pub fn compile_with<T: Telemetry>(
    req: &CompileRequest<'_>,
    cache: &ArtifactCache,
    tel: &T,
) -> Result<Arc<CompiledArtifact>, CompileError> {
    cache.artifact(req.key(), tel, || compile_miss(req, cache, tel))
}

/// The artifact-cache miss path shared by [`compile_with`] and
/// [`compile_stored`]: resolve the (separately memoized) profile stage,
/// then schedule and decode.
fn compile_miss<T: Telemetry>(
    req: &CompileRequest<'_>,
    cache: &ArtifactCache,
    tel: &T,
) -> Result<Arc<CompiledArtifact>, CompileError> {
    let entry = match &req.profile {
        ProfileSource::Train { program, config } => {
            cache.profile(CompileRequest::profile_key(program, config), tel, || {
                profile_stage(&req.profile, tel).map(Arc::new)
            })?
        }
        ProfileSource::Provided(_) => Arc::new(profile_stage(&req.profile, tel)?),
    };
    finish_compile(req, &entry, tel).map(Arc::new)
}

/// Where [`compile_stored`] found the artifact it returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArtifactSource {
    /// Served by the in-memory [`ArtifactCache`] (or by waiting on
    /// another thread's in-flight compile of the same key).
    Memory,
    /// Loaded and validated from the [`DiskStore`].
    Disk,
    /// Compiled from scratch this call.
    Compiled,
}

impl ArtifactSource {
    /// Stable lowercase name (a JSON/report key).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactSource::Memory => "memory",
            ArtifactSource::Disk => "disk",
            ArtifactSource::Compiled => "compiled",
        }
    }
}

/// [`compile_with`] extended with a persistent [`DiskStore`] between the
/// memory cache and the compiler: a memory miss first tries to load (and
/// fully validate) a persisted artifact; a genuine compile persists its
/// product for future processes.  Returns where the artifact came from
/// alongside the artifact.
///
/// A store file that fails validation ([`StoreError`]) is *not* a
/// request failure — the request falls through to a fresh compile whose
/// save overwrites the bad file; the error is counted in the store's
/// [`StoreStats`] and its `store.errors` counter.
///
/// # Errors
///
/// [`CompileError`] from whichever stage failed, as [`compile_with`].
pub fn compile_stored<T: Telemetry>(
    req: &CompileRequest<'_>,
    cache: &ArtifactCache,
    store: Option<&DiskStore>,
    tel: &T,
) -> Result<(Arc<CompiledArtifact>, ArtifactSource), CompileError> {
    let source = std::cell::Cell::new(ArtifactSource::Memory);
    let artifact = cache.artifact(req.key(), tel, || -> Result<_, CompileError> {
        if let Some(store) = store {
            if let Ok(Some(artifact)) = store.load(req, tel) {
                source.set(ArtifactSource::Disk);
                return Ok(artifact);
            }
        }
        source.set(ArtifactSource::Compiled);
        let artifact = compile_miss(req, cache, tel)?;
        if let Some(store) = store {
            // Best-effort persist: an unwritable store must not fail
            // the request; the failure is counted in StoreStats.
            let _ = store.save(&artifact, tel);
        }
        Ok(artifact)
    })?;
    Ok((artifact, source.get()))
}

/// Compiles `req` without any cache — the differential oracle.
///
/// Guaranteed to produce an artifact [`CompiledArtifact::same_content`]
/// with what [`compile`] serves for the same request.
///
/// # Errors
///
/// [`CompileError`] from whichever stage failed.
pub fn compile_fresh(req: &CompileRequest<'_>) -> Result<CompiledArtifact, CompileError> {
    let entry = profile_stage(&req.profile, &NullTelemetry)?;
    finish_compile(req, &entry, &NullTelemetry)
}
