//! The persistent, content-addressed artifact store.
//!
//! The in-memory [`ArtifactCache`](crate::ArtifactCache) dies with its
//! process; a server restarted between identical request mixes would pay
//! every compile again.  The `DiskStore` persists compiled artifacts
//! sccache-style — one file per [`CompileRequest::key`] — and is
//! consulted between the memory cache and a fresh compile by
//! [`compile_stored`](crate::compile_stored).
//!
//! # File format (`{request_key:016x}.psba`)
//!
//! ```text
//!   magic        "PSBA"                          4 bytes
//!   version      u32 LE (currently 1)
//!   request_key  u64 LE
//!   content_hash u64 LE
//!   payload_len  u64 LE
//!   payload      edge profile + VLIW program     (codec below)
//!   checksum     u64 LE, FNV-1a over payload
//! ```
//!
//! The payload carries only the two inputs that are expensive to
//! reproduce — the training [`EdgeProfile`] and the scheduled
//! [`VliwProgram`].  Everything else re-derives on load: the decoded
//! issue arena (`DecodedProgram::decode` + `validate_dispatch`), the
//! static [`ScheduleStats`], and the branch count.  Stage wall timings
//! are zeroed — a disk hit did no compile work.
//!
//! # Validation-on-load and invalidation
//!
//! A load is accepted only if the magic/version match, the payload
//! checksum verifies, the stored `request_key` equals the requesting
//! key, the *recomputed* content hash (over the decoded program, the
//! decoded profile and the request's scheduling configuration) equals
//! the stored one, and the decoded arena passes `validate_dispatch`.
//! Any failure is a typed [`StoreError`] — never a panic — and the
//! caller falls back to a fresh compile, whose save then overwrites the
//! bad file.  Invalidation is therefore implicit: a codec change bumps
//! `STORE_VERSION`, and a scheduler change alters the content hash, so
//! stale files read as errors and self-heal.
//!
//! Writes go to a process-unique temp file followed by a rename, so a
//! concurrent reader in another process sees either the old complete
//! file or the new complete file, never a torn one.

use crate::{CompileRequest, CompileStats, CompiledArtifact, DebugHasher};
use psb_core::DecodedProgram;
use psb_isa::{
    AluOp, BlockId, CmpOp, CondReg, MemImage, MemTag, MultiOp, Op, PredTerm, Predicate, Reg, Slot,
    SlotOp, Src, VliwProgram, MAX_CONDS, NUM_REGS,
};
use psb_scalar::EdgeProfile;
use psb_sched::ScheduleStats;
use psb_telemetry::{names, Telemetry};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const MAGIC: [u8; 4] = *b"PSBA";
/// Bumped whenever the payload codec changes shape; old files then read
/// as [`StoreError::Version`] and recompile.
pub const STORE_VERSION: u32 = 1;

/// A store operation that failed, with enough structure for tests to
/// pin the failure mode and for logs to say what happened.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// Filesystem error (message carries the rendered `io::Error`).
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The rendered I/O error.
        message: String,
    },
    /// The file does not start with the `PSBA` magic.
    Magic,
    /// The file's codec version is not [`STORE_VERSION`].
    Version(u32),
    /// The file ended before the codec was done reading.
    Truncated {
        /// Byte offset at which input ran out.
        offset: usize,
    },
    /// The payload checksum did not verify.
    Checksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The file's `request_key` is not the requesting key (a misnamed
    /// or cross-linked file).
    KeyMismatch {
        /// Key the caller asked for.
        requested: u64,
        /// Key recorded in the file.
        stored: u64,
    },
    /// The content hash recomputed from the decoded payload and the
    /// request's scheduling configuration disagrees with the stored one
    /// (bit rot, or an artifact from a different toolchain state).
    ContentHash {
        /// Hash recorded in the file.
        stored: u64,
        /// Hash recomputed on load.
        actual: u64,
    },
    /// A structural decode error (bad tag, out-of-range register, …).
    Corrupt(String),
    /// The decoded program failed the machine's dispatch validation.
    Dispatch(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "store i/o on {}: {message}", path.display())
            }
            StoreError::Magic => write!(f, "not a PSBA artifact file"),
            StoreError::Version(v) => {
                write!(f, "artifact codec version {v}, expected {STORE_VERSION}")
            }
            StoreError::Truncated { offset } => write!(f, "artifact truncated at byte {offset}"),
            StoreError::Checksum { stored, actual } => write!(
                f,
                "artifact checksum mismatch: stored {stored:016x}, actual {actual:016x}"
            ),
            StoreError::KeyMismatch { requested, stored } => write!(
                f,
                "artifact key mismatch: requested {requested:016x}, file holds {stored:016x}"
            ),
            StoreError::ContentHash { stored, actual } => write!(
                f,
                "artifact content-hash mismatch: stored {stored:016x}, recomputed {actual:016x}"
            ),
            StoreError::Corrupt(m) => write!(f, "artifact payload corrupt: {m}"),
            StoreError::Dispatch(m) => write!(f, "artifact failed dispatch validation: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Counter snapshot of one [`DiskStore`]'s lifetime.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StoreStats {
    /// Loads that validated and produced an artifact.
    pub hits: u64,
    /// Loads that found no file for the key.
    pub misses: u64,
    /// Loads that found a file but rejected it ([`StoreError`]).
    pub errors: u64,
    /// Artifacts persisted.
    pub writes: u64,
    /// Artifacts deleted to stay under the size cap.
    pub evictions: u64,
}

/// A directory of persisted artifacts, shared across processes.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Total-size cap in bytes (`--store-max-bytes`); `None` = unbounded.
    max_bytes: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<DiskStore, StoreError> {
        DiskStore::open_with_limit(root, None)
    }

    /// [`DiskStore::open`] with a total-size cap.  Every save that
    /// pushes the store past `max_bytes` evicts oldest-modified `.psba`
    /// files (never the one just written) until it fits again; hits
    /// refresh a file's mtime, so eviction order approximates LRU
    /// across processes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open_with_limit(
        root: impl Into<PathBuf>,
        max_bytes: Option<u64>,
    ) -> Result<DiskStore, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io {
            path: root.clone(),
            message: e.to_string(),
        })?;
        Ok(DiskStore {
            root,
            max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The directory this store persists into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file a given request key persists to.
    pub fn path_for(&self, request_key: u64) -> PathBuf {
        self.root.join(format!("{request_key:016x}.psba"))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Looks up the persisted artifact for `req`, fully validating it.
    ///
    /// `Ok(None)` means no file exists for the key (a clean miss).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when a file exists but cannot be trusted; the
    /// caller should recompile (and its save will overwrite the file).
    pub fn load<T: Telemetry>(
        &self,
        req: &CompileRequest<'_>,
        tel: &T,
    ) -> Result<Option<Arc<CompiledArtifact>>, StoreError> {
        let key = req.key();
        let path = self.path_for(key);
        let start = Instant::now();
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                tel.counter(names::STORE_MISSES, 1);
                return Ok(None);
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                tel.counter(names::STORE_ERRORS, 1);
                return Err(StoreError::Io {
                    path,
                    message: e.to_string(),
                });
            }
        };
        match decode_artifact(&bytes, req) {
            Ok(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                tel.counter(names::STORE_HITS, 1);
                tel.observe_host(names::STORE_LOAD_NS, start.elapsed().as_nanos() as u64);
                // Touch the file so size-capped stores evict least
                // recently *used*, not least recently written.  Best
                // effort — a failed touch only skews eviction order.
                if self.max_bytes.is_some() {
                    if let Ok(f) = std::fs::File::options().write(true).open(&path) {
                        let now =
                            std::fs::FileTimes::new().set_modified(std::time::SystemTime::now());
                        let _ = f.set_times(now);
                    }
                }
                Ok(Some(Arc::new(artifact)))
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                tel.counter(names::STORE_ERRORS, 1);
                Err(e)
            }
        }
    }

    /// Persists `artifact` under its request key (atomic overwrite).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the temp write or rename fails.
    pub fn save<T: Telemetry>(
        &self,
        artifact: &CompiledArtifact,
        tel: &T,
    ) -> Result<(), StoreError> {
        let start = Instant::now();
        let bytes = encode_artifact(artifact);
        let path = self.path_for(artifact.request_key);
        let tmp = self.root.join(format!(
            ".tmp-{:016x}-{}",
            artifact.request_key,
            std::process::id()
        ));
        let io_err = |p: &Path, e: std::io::Error| {
            self.errors.fetch_add(1, Ordering::Relaxed);
            StoreError::Io {
                path: p.to_path_buf(),
                message: e.to_string(),
            }
        };
        std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        tel.counter(names::STORE_WRITES, 1);
        tel.observe_host(names::STORE_SAVE_NS, start.elapsed().as_nanos() as u64);
        self.enforce_limit(&path, tel);
        Ok(())
    }

    /// Deletes oldest-modified `.psba` files until the store fits under
    /// `max_bytes` again.  `keep` (the file just written) is never
    /// evicted — a save must not immediately undo itself, even when one
    /// artifact alone exceeds the cap.  Ties on mtime break on the file
    /// name, so concurrent same-second writes still evict in a
    /// deterministic order.  Best effort throughout: another process
    /// racing a delete is not an error.
    fn enforce_limit<T: Telemetry>(&self, keep: &Path, tel: &T) {
        let Some(cap) = self.max_bytes else { return };
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        let mut total = 0u64;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|s| s.to_str()) != Some("psba") {
                continue;
            }
            let Ok(md) = entry.metadata() else { continue };
            total += md.len();
            let mtime = md.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            files.push((mtime, path, md.len()));
        }
        if total <= cap {
            return;
        }
        files.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (_, path, len) in files {
            if total <= cap {
                break;
            }
            if path == keep {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                tel.counter(names::STORE_EVICTIONS, 1);
            }
        }
    }
}

/// Serializes an artifact into the `.psba` byte layout.
pub fn encode_artifact(artifact: &CompiledArtifact) -> Vec<u8> {
    let mut payload = Writer::default();
    payload.profile(&artifact.profile);
    payload.program(&artifact.program);
    let payload = payload.buf;

    let mut out = Vec::with_capacity(payload.len() + 40);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&artifact.request_key.to_le_bytes());
    out.extend_from_slice(&artifact.content_hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out
}

/// Decodes and fully validates a `.psba` byte image against `req`.
///
/// # Errors
///
/// [`StoreError`] describing the first validation failure.
pub fn decode_artifact(
    bytes: &[u8],
    req: &CompileRequest<'_>,
) -> Result<CompiledArtifact, StoreError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.bytes(4)? != MAGIC {
        return Err(StoreError::Magic);
    }
    let version = r.u32()?;
    if version != STORE_VERSION {
        return Err(StoreError::Version(version));
    }
    let stored_key = r.u64()?;
    let requested = req.key();
    if stored_key != requested {
        return Err(StoreError::KeyMismatch {
            requested,
            stored: stored_key,
        });
    }
    let stored_hash = r.u64()?;
    let payload_len = r.u64()? as usize;
    let payload = r.bytes(payload_len)?;
    let stored_sum = r.u64()?;
    r.end()?;
    let actual_sum = fnv1a(payload);
    if stored_sum != actual_sum {
        return Err(StoreError::Checksum {
            stored: stored_sum,
            actual: actual_sum,
        });
    }

    let mut p = Reader {
        buf: payload,
        pos: 0,
    };
    let profile = p.read_profile()?;
    let program = p.read_program()?;
    p.end()?;

    // Recompute the content hash exactly as `finish_compile` does; a
    // mismatch means the payload is not the artifact this request would
    // compile today (scheduler drift, profile drift, or plain bit rot).
    let mut h = DebugHasher::new();
    h.field(&"artifact-v1");
    h.field(&program);
    h.field(&profile);
    h.field(&req.sched);
    h.field(&req.sched.resources);
    let actual_hash = h.finish();
    if actual_hash != stored_hash {
        return Err(StoreError::ContentHash {
            stored: stored_hash,
            actual: actual_hash,
        });
    }

    let decoded = DecodedProgram::decode(&program);
    decoded.validate_dispatch().map_err(StoreError::Dispatch)?;
    let sched_stats = ScheduleStats::analyze(&program);
    let stats = CompileStats {
        profile_seconds: 0.0,
        schedule_seconds: 0.0,
        decode_seconds: 0.0,
        profile_branches: profile.total(),
        words: program.words.len(),
        slots: decoded.slots.len(),
    };
    Ok(CompiledArtifact {
        request_key: stored_key,
        content_hash: stored_hash,
        profile,
        program,
        sched_stats,
        decoded: Arc::new(decoded),
        stats,
    })
}

/// FNV-1a over a byte slice (the payload checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Payload codec.  All integers little-endian; collections are a u32
// count followed by the elements.  Enum tags are single bytes chosen
// once and frozen — reordering a source enum must not change the format.
// ---------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }
    fn string(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn profile(&mut self, profile: &EdgeProfile) {
        self.len(profile.num_blocks());
        for i in 0..profile.num_blocks() {
            let (taken, not_taken) = profile.counts(BlockId(i as u32));
            self.u64(taken);
            self.u64(not_taken);
        }
    }

    fn program(&mut self, prog: &VliwProgram) {
        self.string(&prog.name);
        self.len(prog.words.len());
        for word in &prog.words {
            self.len(word.slots.len());
            for slot in &word.slots {
                self.pred(&slot.pred);
                self.slot_op(&slot.op);
            }
        }
        self.len(prog.region_starts.len());
        for &start in &prog.region_starts {
            self.u64(start as u64);
        }
        self.u32(prog.num_conds as u32);
        self.len(prog.init_regs.len());
        for &(reg, value) in &prog.init_regs {
            self.u8(reg.index() as u8);
            self.i64(value);
        }
        self.i64(prog.memory.size);
        self.len(prog.memory.cells.len());
        for &(addr, value) in &prog.memory.cells {
            self.i64(addr);
            self.i64(value);
        }
        self.len(prog.live_out.len());
        for &reg in &prog.live_out {
            self.u8(reg.index() as u8);
        }
    }

    fn pred(&mut self, pred: &Predicate) {
        let (mut pos, mut neg) = (0u8, 0u8);
        for (c, term) in pred.terms() {
            match term {
                PredTerm::Pos => pos |= 1 << c.index(),
                PredTerm::Neg => neg |= 1 << c.index(),
                PredTerm::DontCare => {}
            }
        }
        self.u8(pos);
        self.u8(neg);
    }

    fn slot_op(&mut self, op: &SlotOp) {
        match op {
            SlotOp::Op(inner) => {
                self.u8(0);
                self.op(inner);
            }
            SlotOp::Jump { target } => {
                self.u8(1);
                self.u64(*target as u64);
            }
            SlotOp::CmpBr {
                c,
                cmp,
                a,
                b,
                target,
            } => {
                self.u8(2);
                self.opt_cond(*c);
                self.u8(cmp_tag(*cmp));
                self.src(*a);
                self.src(*b);
                self.u64(*target as u64);
            }
            SlotOp::Halt => self.u8(3),
        }
    }

    fn op(&mut self, op: &Op) {
        match *op {
            Op::Alu { op, rd, a, b } => {
                self.u8(0);
                self.u8(alu_tag(op));
                self.u8(rd.index() as u8);
                self.src(a);
                self.src(b);
            }
            Op::Copy { rd, src } => {
                self.u8(1);
                self.u8(rd.index() as u8);
                self.src(src);
            }
            Op::Load {
                rd,
                base,
                offset,
                tag,
            } => {
                self.u8(2);
                self.u8(rd.index() as u8);
                self.src(base);
                self.i64(offset);
                self.u16(tag.0);
            }
            Op::Store {
                base,
                offset,
                value,
                tag,
            } => {
                self.u8(3);
                self.src(base);
                self.i64(offset);
                self.src(value);
                self.u16(tag.0);
            }
            Op::SetCond { c, cmp, a, b } => {
                self.u8(4);
                self.u8(c.index() as u8);
                self.u8(cmp_tag(cmp));
                self.src(a);
                self.src(b);
            }
            Op::Nop => self.u8(5),
        }
    }

    fn src(&mut self, src: Src) {
        match src {
            Src::Reg { reg, shadow } => {
                self.u8(0);
                self.u8(reg.index() as u8);
                self.u8(shadow as u8);
            }
            Src::Imm(v) => {
                self.u8(1);
                self.i64(v);
            }
        }
    }

    fn opt_cond(&mut self, c: Option<CondReg>) {
        match c {
            Some(c) => self.u8(c.index() as u8),
            None => self.u8(0xff),
        }
    }
}

fn alu_tag(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Sll => 5,
        AluOp::Srl => 6,
        AluOp::Sra => 7,
        AluOp::Slt => 8,
        AluOp::Mul => 9,
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(StoreError::Truncated { offset: self.pos })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn end(&self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{} trailing bytes at offset {}",
                self.buf.len() - self.pos,
                self.pos
            )))
        }
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn count(&mut self) -> Result<usize, StoreError> {
        Ok(self.u32()? as usize)
    }

    fn string(&mut self) -> Result<String, StoreError> {
        let n = self.count()?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt("non-utf8 string".into()))
    }

    fn reg(&mut self) -> Result<Reg, StoreError> {
        let idx = self.u8()? as usize;
        if idx >= NUM_REGS {
            return Err(StoreError::Corrupt(format!("register index {idx}")));
        }
        Ok(Reg::new(idx))
    }

    fn cond(&mut self) -> Result<CondReg, StoreError> {
        let idx = self.u8()? as usize;
        if idx >= MAX_CONDS {
            return Err(StoreError::Corrupt(format!("condition index {idx}")));
        }
        Ok(CondReg::new(idx))
    }

    fn read_profile(&mut self) -> Result<EdgeProfile, StoreError> {
        let blocks = self.count()?;
        let mut counts = Vec::with_capacity(blocks.min(1 << 20));
        for _ in 0..blocks {
            counts.push((self.u64()?, self.u64()?));
        }
        Ok(EdgeProfile::from_counts(counts))
    }

    fn read_program(&mut self) -> Result<VliwProgram, StoreError> {
        let name = self.string()?;
        let word_count = self.count()?;
        let mut words = Vec::with_capacity(word_count.min(1 << 20));
        for _ in 0..word_count {
            let slot_count = self.count()?;
            let mut slots = Vec::with_capacity(slot_count.min(1 << 10));
            for _ in 0..slot_count {
                let pred = self.pred()?;
                let op = self.slot_op()?;
                slots.push(Slot::new(pred, op));
            }
            words.push(MultiOp::new(slots));
        }
        let start_count = self.count()?;
        let mut region_starts = Vec::with_capacity(start_count.min(1 << 20));
        for _ in 0..start_count {
            region_starts.push(self.u64()? as usize);
        }
        let num_conds = self.u32()? as usize;
        if num_conds > MAX_CONDS {
            return Err(StoreError::Corrupt(format!("num_conds {num_conds}")));
        }
        let init_count = self.count()?;
        let mut init_regs = Vec::with_capacity(init_count.min(NUM_REGS));
        for _ in 0..init_count {
            init_regs.push((self.reg()?, self.i64()?));
        }
        let size = self.i64()?;
        let cell_count = self.count()?;
        let mut cells = Vec::with_capacity(cell_count.min(1 << 20));
        for _ in 0..cell_count {
            cells.push((self.i64()?, self.i64()?));
        }
        let live_count = self.count()?;
        let mut live_out = Vec::with_capacity(live_count.min(NUM_REGS));
        for _ in 0..live_count {
            live_out.push(self.reg()?);
        }
        Ok(VliwProgram {
            name,
            words,
            region_starts,
            num_conds,
            init_regs,
            memory: MemImage { size, cells },
            live_out,
        })
    }

    fn pred(&mut self) -> Result<Predicate, StoreError> {
        let pos = self.u8()?;
        let neg = self.u8()?;
        if pos & neg != 0 {
            return Err(StoreError::Corrupt(format!(
                "predicate masks overlap: pos {pos:#04x}, neg {neg:#04x}"
            )));
        }
        let mut pred = Predicate::always();
        for i in 0..MAX_CONDS {
            let bit = 1u8 << i;
            if pos & bit != 0 {
                pred = pred.with_term(CondReg::new(i), PredTerm::Pos);
            } else if neg & bit != 0 {
                pred = pred.with_term(CondReg::new(i), PredTerm::Neg);
            }
        }
        Ok(pred)
    }

    fn slot_op(&mut self) -> Result<SlotOp, StoreError> {
        match self.u8()? {
            0 => Ok(SlotOp::Op(self.op()?)),
            1 => Ok(SlotOp::Jump {
                target: self.u64()? as usize,
            }),
            2 => {
                let c = match self.u8()? {
                    0xff => None,
                    idx if (idx as usize) < MAX_CONDS => Some(CondReg::new(idx as usize)),
                    idx => {
                        return Err(StoreError::Corrupt(format!("condition index {idx}")));
                    }
                };
                Ok(SlotOp::CmpBr {
                    c,
                    cmp: self.cmp()?,
                    a: self.src()?,
                    b: self.src()?,
                    target: self.u64()? as usize,
                })
            }
            3 => Ok(SlotOp::Halt),
            t => Err(StoreError::Corrupt(format!("slot-op tag {t}"))),
        }
    }

    fn op(&mut self) -> Result<Op, StoreError> {
        match self.u8()? {
            0 => Ok(Op::Alu {
                op: self.alu()?,
                rd: self.reg()?,
                a: self.src()?,
                b: self.src()?,
            }),
            1 => Ok(Op::Copy {
                rd: self.reg()?,
                src: self.src()?,
            }),
            2 => Ok(Op::Load {
                rd: self.reg()?,
                base: self.src()?,
                offset: self.i64()?,
                tag: MemTag(self.u16()?),
            }),
            3 => Ok(Op::Store {
                base: self.src()?,
                offset: self.i64()?,
                value: self.src()?,
                tag: MemTag(self.u16()?),
            }),
            4 => Ok(Op::SetCond {
                c: self.cond()?,
                cmp: self.cmp()?,
                a: self.src()?,
                b: self.src()?,
            }),
            5 => Ok(Op::Nop),
            t => Err(StoreError::Corrupt(format!("op tag {t}"))),
        }
    }

    fn src(&mut self) -> Result<Src, StoreError> {
        match self.u8()? {
            0 => {
                let reg = self.reg()?;
                let shadow = match self.u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(StoreError::Corrupt(format!("shadow flag {b}"))),
                };
                Ok(Src::Reg { reg, shadow })
            }
            1 => Ok(Src::Imm(self.i64()?)),
            t => Err(StoreError::Corrupt(format!("src tag {t}"))),
        }
    }

    fn alu(&mut self) -> Result<AluOp, StoreError> {
        Ok(match self.u8()? {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::And,
            3 => AluOp::Or,
            4 => AluOp::Xor,
            5 => AluOp::Sll,
            6 => AluOp::Srl,
            7 => AluOp::Sra,
            8 => AluOp::Slt,
            9 => AluOp::Mul,
            t => return Err(StoreError::Corrupt(format!("alu tag {t}"))),
        })
    }

    fn cmp(&mut self) -> Result<CmpOp, StoreError> {
        Ok(match self.u8()? {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            t => return Err(StoreError::Corrupt(format!("cmp tag {t}"))),
        })
    }
}
