//! Content hashing for compile requests and artifacts.
//!
//! The workspace is offline (no serde, no external hashers), so identity
//! is derived from the deterministic `Debug` rendering of the hashed
//! values, streamed through FNV-1a and finished with a splitmix64-style
//! avalanche.  Every hashed type renders its `Debug` form from plain
//! scalars, `Vec`s and `BTreeSet`s — no iteration-order-unstable
//! container is involved — so a given value hashes identically across
//! runs, hosts, threads and `--jobs` counts.

use std::fmt::{self, Write};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// splitmix64 finalizer: avalanches the FNV state so that requests
/// differing only in a late field still spread across cache shards.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streaming FNV-1a hasher usable as a [`fmt::Write`] sink, so arbitrary
/// `Debug` output is hashed without materializing the rendered string.
#[derive(Clone, Debug)]
pub struct DebugHasher {
    state: u64,
}

impl DebugHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> DebugHasher {
        DebugHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes into the running FNV-1a state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes one `Debug`-rendered value followed by a separator byte, so
    /// adjacent fields cannot alias across their boundary.
    pub fn field(&mut self, value: &dyn fmt::Debug) {
        write!(self, "{value:?}").expect("DebugHasher::write_str is infallible");
        self.write_bytes(&[0x1f]);
    }

    /// The finalized 64-bit digest.
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }
}

impl Default for DebugHasher {
    fn default() -> DebugHasher {
        DebugHasher::new()
    }
}

impl Write for DebugHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Hashes a sequence of `Debug` fields into one digest.
pub fn hash_fields(fields: &[&dyn fmt::Debug]) -> u64 {
    let mut h = DebugHasher::new();
    for f in fields {
        h.field(*f);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_same_digest() {
        let a = hash_fields(&[&1u64, &"x", &vec![1, 2, 3]]);
        let b = hash_fields(&[&1u64, &"x", &vec![1, 2, 3]]);
        assert_eq!(a, b);
    }

    #[test]
    fn field_boundaries_matter() {
        // Without separators, ["ab", "c"] and ["a", "bc"] would collide.
        assert_ne!(hash_fields(&[&"ab", &"c"]), hash_fields(&[&"a", &"bc"]));
        assert_ne!(hash_fields(&[&1u8]), hash_fields(&[&1u8, &1u8]));
    }

    #[test]
    fn digest_is_sensitive_to_every_byte() {
        let base = hash_fields(&[&vec![0u8; 64]]);
        for i in 0..64 {
            let mut v = vec![0u8; 64];
            v[i] = 1;
            assert_ne!(base, hash_fields(&[&v]), "byte {i} ignored");
        }
    }
}
