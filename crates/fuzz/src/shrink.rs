//! Delta-debugging shrinker for failing fuzz cases.
//!
//! Given a case that fails the differential driver, the shrinker greedily
//! applies structure-aware reductions — drop an instruction, collapse a
//! branch to one of its arms, simplify an operand to a constant, halve an
//! immediate, drop fault addresses / initial values / memory cells / the
//! live-out set, and garbage-collect unreachable blocks — keeping a
//! mutation only if the reduced program still fails *in the same class*
//! (same [`FuzzFailure`] variant on the same model).  Classic list-style
//! delta debugging (chunked removal with doubling granularity) handles the
//! bulk collections so 127 memory cells don't cost 127 runs.
//!
//! Every trial runs under a low cycle cap ([`DiffConfig::max_cycles`]):
//! a mutation that turns a counted loop infinite (for example collapsing
//! the latch branch to its back edge) fails fast with a cycle-limit error
//! — a different failure class, so it is rejected — instead of spinning
//! for the machines' default cap.

use crate::diff::{run_case, DiffConfig, FuzzFailure};
use crate::gen::FuzzCase;
use psb_isa::{Src, Terminator};
use psb_sched::Model;

/// The identity of a failure for shrinking purposes: the variant plus the
/// model it occurred on (`None` for scalar-side failures).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FailureClass {
    kind: u8,
    model: Option<Model>,
}

/// The class of `f` — two failures in the same class are treated as "the
/// same bug" by the shrinker.
pub fn class_of(f: &FuzzFailure) -> FailureClass {
    match f {
        FuzzFailure::Scalar(_) => FailureClass {
            kind: 0,
            model: None,
        },
        FuzzFailure::Compile { model, .. } => FailureClass {
            kind: 1,
            model: Some(*model),
        },
        FuzzFailure::Machine { model, .. } => FailureClass {
            kind: 2,
            model: Some(*model),
        },
        FuzzFailure::Diverged { model, .. } => FailureClass {
            kind: 3,
            model: Some(*model),
        },
        FuzzFailure::Invariant { model, .. } => FailureClass {
            kind: 4,
            model: Some(*model),
        },
    }
}

/// Cycle cap for shrink trials: generous for any minimized program, tiny
/// against the 2·10⁸ default.
const TRIAL_CYCLE_CAP: u64 = 200_000;

/// Minimizes `case`, which must fail under `cfg`.
///
/// Returns the minimized case and the failure it still exhibits, or
/// `None` if the input does not fail in the first place.  Deterministic:
/// the same input always shrinks to the same output.
pub fn shrink_case(case: &FuzzCase, cfg: &DiffConfig) -> Option<(FuzzCase, FuzzFailure)> {
    let trial_cfg = DiffConfig {
        max_cycles: Some(cfg.max_cycles.unwrap_or(TRIAL_CYCLE_CAP)),
        ..cfg.clone()
    };
    let class = class_of(&run_case(case, &trial_cfg).err()?);
    let fails = |c: &FuzzCase| {
        c.program.validate().is_ok()
            && matches!(run_case(c, &trial_cfg), Err(ref f) if class_of(f) == class)
    };

    let mut cur = case.clone();
    loop {
        let mut progress = false;
        progress |= drop_instructions(&mut cur, &fails);
        progress |= simplify_branches(&mut cur, &fails);
        progress |= thread_jumps(&mut cur, &fails);
        progress |= compact_blocks(&mut cur, &fails);
        progress |= simplify_operands(&mut cur, &fails);
        progress |= shrink_lists(&mut cur, &fails);
        if !progress {
            break;
        }
    }
    let failure = run_case(&cur, &trial_cfg).err()?;
    Some((cur, failure))
}

/// Chunked list minimization (ddmin): tries removing progressively
/// smaller chunks, restarting at coarse granularity after any success.
fn minimize_list<T: Clone>(items: &[T], mut keep_fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = items.to_vec();
    let mut chunk = cur.len().max(1);
    while chunk >= 1 && !cur.is_empty() {
        let mut start = 0;
        let mut removed_any = false;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = cur.clone();
            candidate.drain(start..end);
            if keep_fails(&candidate) {
                cur = candidate;
                removed_any = true;
                // Re-test the same start index against the shorter list.
            } else {
                start = end;
            }
        }
        if !removed_any || chunk == 1 {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        } else {
            chunk = chunk.min(cur.len().max(1));
        }
    }
    cur
}

/// Removes straight-line instructions, one block at a time with chunked
/// removal inside the block.
fn drop_instructions(cur: &mut FuzzCase, fails: &impl Fn(&FuzzCase) -> bool) -> bool {
    let mut progress = false;
    for b in 0..cur.program.blocks.len() {
        let instrs = cur.program.blocks[b].instrs.clone();
        if instrs.is_empty() {
            continue;
        }
        let reduced = minimize_list(&instrs, |kept| {
            let mut cand = cur.clone();
            cand.program.blocks[b].instrs = kept.to_vec();
            fails(&cand)
        });
        if reduced.len() < instrs.len() {
            cur.program.blocks[b].instrs = reduced;
            progress = true;
        }
    }
    progress
}

/// Collapses branches to unconditional jumps (taken arm first, then the
/// not-taken arm).
fn simplify_branches(cur: &mut FuzzCase, fails: &impl Fn(&FuzzCase) -> bool) -> bool {
    let mut progress = false;
    for b in 0..cur.program.blocks.len() {
        let (taken, not_taken) = match cur.program.blocks[b].term {
            Terminator::Branch {
                taken, not_taken, ..
            } => (taken, not_taken),
            _ => continue,
        };
        for target in [taken, not_taken] {
            let mut cand = cur.clone();
            cand.program.blocks[b].term = Terminator::Jump(target);
            if fails(&cand) {
                *cur = cand;
                progress = true;
                break;
            }
        }
    }
    progress
}

/// Follows a chain of empty jump-only blocks starting at `t`, returning
/// the first block that has instructions or a non-jump terminator.
fn resolve_chain(prog: &psb_isa::ScalarProgram, mut t: psb_isa::BlockId) -> psb_isa::BlockId {
    let mut hops = 0;
    loop {
        let blk = &prog.blocks[t.index()];
        match blk.term {
            Terminator::Jump(u) if blk.instrs.is_empty() && hops < prog.blocks.len() => {
                t = u;
                hops += 1;
            }
            _ => return t,
        }
    }
}

/// Threads control edges through empty jump-only blocks, and turns a jump
/// into an empty halt block into a halt.  Behaviour-preserving, but only
/// accepted if the failure survives.
fn thread_jumps(cur: &mut FuzzCase, fails: &impl Fn(&FuzzCase) -> bool) -> bool {
    let mut cand = cur.clone();
    let mut changed = false;
    for b in 0..cand.program.blocks.len() {
        let new_term = match cand.program.blocks[b].term {
            Terminator::Jump(t) => {
                let r = resolve_chain(&cur.program, t);
                let target = &cur.program.blocks[r.index()];
                if target.instrs.is_empty() && target.term == Terminator::Halt {
                    Terminator::Halt
                } else {
                    Terminator::Jump(r)
                }
            }
            Terminator::Branch {
                cmp,
                a,
                b: rhs,
                taken,
                not_taken,
            } => Terminator::Branch {
                cmp,
                a,
                b: rhs,
                taken: resolve_chain(&cur.program, taken),
                not_taken: resolve_chain(&cur.program, not_taken),
            },
            Terminator::Halt => continue,
        };
        if new_term != cand.program.blocks[b].term {
            cand.program.blocks[b].term = new_term;
            changed = true;
        }
    }
    if changed && fails(&cand) {
        *cur = cand;
        true
    } else {
        false
    }
}

/// Garbage-collects unreachable blocks and renumbers the survivors.
fn compact_blocks(cur: &mut FuzzCase, fails: &impl Fn(&FuzzCase) -> bool) -> bool {
    let n = cur.program.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![cur.program.entry];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut reachable[id.index()], true) {
            continue;
        }
        stack.extend(cur.program.blocks[id.index()].term.successors());
    }
    if reachable.iter().all(|&r| r) {
        return false;
    }
    let mut remap = vec![None; n];
    let mut next = 0u32;
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            remap[i] = Some(psb_isa::BlockId(next));
            next += 1;
        }
    }
    let mut cand = cur.clone();
    cand.program.blocks = cur
        .program
        .blocks
        .iter()
        .enumerate()
        .filter(|(i, _)| reachable[*i])
        .map(|(_, blk)| {
            let mut blk = blk.clone();
            blk.term = blk.term.map_targets(|t| remap[t.index()].unwrap());
            blk
        })
        .collect();
    cand.program.entry = remap[cur.program.entry.index()].unwrap();
    // Dropping dead code cannot change behaviour, but stay paranoid: only
    // accept if the failure survives.
    if fails(&cand) {
        *cur = cand;
        true
    } else {
        false
    }
}

/// Replaces register operands with `0` and halves immediates toward zero,
/// one source position at a time.
fn simplify_operands(cur: &mut FuzzCase, fails: &impl Fn(&FuzzCase) -> bool) -> bool {
    let mut progress = false;
    for b in 0..cur.program.blocks.len() {
        for i in 0..cur.program.blocks[b].instrs.len() {
            let op = cur.program.blocks[b].instrs[i];
            let nsrcs = op.srcs().len();
            for s in 0..nsrcs {
                let current = cur.program.blocks[b].instrs[i];
                let replacement = match current.srcs()[s] {
                    Src::Imm(0) => continue,
                    Src::Imm(v) => Src::imm(v / 2),
                    Src::Reg { .. } => Src::imm(0),
                };
                let mut idx = 0;
                let simplified = current.map_srcs(|src| {
                    let out = if idx == s { replacement } else { src };
                    idx += 1;
                    out
                });
                let mut cand = cur.clone();
                cand.program.blocks[b].instrs[i] = simplified;
                if fails(&cand) {
                    *cur = cand;
                    progress = true;
                }
            }
        }
        // Branch compare operands shrink the same way.
        if let Terminator::Branch { a, b: rhs, .. } = cur.program.blocks[b].term {
            for (pos, src) in [(0, a), (1, rhs)] {
                let replacement = match src {
                    Src::Imm(0) => continue,
                    Src::Imm(v) => Src::imm(v / 2),
                    Src::Reg { .. } => Src::imm(0),
                };
                let mut cand = cur.clone();
                if let Terminator::Branch { a, b: rhs, .. } = &mut cand.program.blocks[b].term {
                    if pos == 0 {
                        *a = replacement;
                    } else {
                        *rhs = replacement;
                    }
                }
                if fails(&cand) {
                    *cur = cand;
                    progress = true;
                }
            }
        }
    }
    progress
}

/// Shrinks the bulk collections: fault addresses, initial registers,
/// memory cells, and the live-out set.
fn shrink_lists(cur: &mut FuzzCase, fails: &impl Fn(&FuzzCase) -> bool) -> bool {
    let mut progress = false;

    let faults: Vec<i64> = cur.fault_once.iter().copied().collect();
    let reduced = minimize_list(&faults, |kept| {
        let mut cand = cur.clone();
        cand.fault_once = kept.iter().copied().collect();
        fails(&cand)
    });
    if reduced.len() < faults.len() {
        cur.fault_once = reduced.into_iter().collect();
        progress = true;
    }

    let inits = cur.program.init_regs.clone();
    let reduced = minimize_list(&inits, |kept| {
        let mut cand = cur.clone();
        cand.program.init_regs = kept.to_vec();
        fails(&cand)
    });
    if reduced.len() < inits.len() {
        cur.program.init_regs = reduced;
        progress = true;
    }

    let cells = cur.program.memory.cells.clone();
    let reduced = minimize_list(&cells, |kept| {
        let mut cand = cur.clone();
        cand.program.memory.cells = kept.to_vec();
        fails(&cand)
    });
    if reduced.len() < cells.len() {
        cur.program.memory.cells = reduced;
        progress = true;
    }

    let live = cur.program.live_out.clone();
    let reduced = minimize_list(&live, |kept| {
        let mut cand = cur.clone();
        cand.program.live_out = kept.to_vec();
        fails(&cand)
    });
    if reduced.len() < live.len() {
        cur.program.live_out = reduced;
        progress = true;
    }

    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    #[test]
    fn clean_cases_do_not_shrink() {
        assert!(shrink_case(&gen_case(0), &DiffConfig::default()).is_none());
    }

    #[test]
    fn injected_bug_shrinks_to_a_tiny_repro() {
        let cfg = DiffConfig {
            inject_recovery_bug: true,
            ..DiffConfig::default()
        };
        let failing = (0..60)
            .map(gen_case)
            .find(|c| run_case(c, &cfg).is_err())
            .expect("no seed tripped the injected bug");
        let before = failing.instruction_count();
        let (small, failure) = shrink_case(&failing, &cfg).unwrap();
        assert!(
            small.instruction_count() <= 8,
            "shrunk to {} instructions (from {before}): {failure}\n{}",
            small.instruction_count(),
            small.program.to_asm()
        );
    }
}
