//! Seeded structured program generation.
//!
//! The generator emits always-terminating region-shaped control flow —
//! chains of straight-line fragments, diamonds, *nested* diamonds,
//! triangles (one-armed ifs whose merge triggers tail duplication in the
//! region formers), and counted loops with data-dependent early exits —
//! filled with ALU ops plus loads and stores over two aliasing address
//! windows.  A subset of the load window is marked fault-once so that
//! speculative loads hoisted above their branches latch E flags and drive
//! the machine through full recovery episodes.
//!
//! Everything is derived from a single `u64` seed: the same seed yields
//! the same [`FuzzCase`] on every host, which is what makes the fuzz
//! report reproducible and the shrinker deterministic.

use psb_isa::{AluOp, CmpOp, MemTag, Op, ProgramBuilder, Reg, ScalarProgram, Src};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Registers `r1..=DATA_REGS` carry data and are all observable.
pub const DATA_REGS: usize = 10;
/// Scratch register used to bound load/store addresses.
const ADDR_REG: usize = 11;
/// Loop counter register (fresh per loop fragment, chain-structured).
const LOOP_REG: usize = 12;
/// Loads read `LOAD_BASE + (reg & WINDOW_MASK)`.
const LOAD_BASE: i64 = 16;
/// Stores write `STORE_BASE + (reg & WINDOW_MASK)`.
const STORE_BASE: i64 = 64;
const WINDOW_MASK: i64 = 31;

/// One generated fuzz input: a scalar program plus the fault-once address
/// set both machines are configured with.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The program under test.
    pub program: ScalarProgram,
    /// Addresses whose first access faults (mirrored into both the scalar
    /// and the VLIW machine configuration).
    pub fault_once: BTreeSet<i64>,
}

impl FuzzCase {
    /// Static instruction count: straight-line ops plus control
    /// terminators (jumps and branches; the final halt is free).
    pub fn instruction_count(&self) -> usize {
        self.program
            .blocks
            .iter()
            .map(|b| {
                b.instrs.len()
                    + match b.term {
                        psb_isa::Terminator::Halt => 0,
                        _ => 1,
                    }
            })
            .sum()
    }
}

fn r(i: usize) -> Reg {
    Reg::new(i)
}

fn data_reg(rng: &mut StdRng) -> Reg {
    r(rng.gen_range(1..=DATA_REGS))
}

fn rand_src(rng: &mut StdRng) -> Src {
    if rng.gen_bool(0.3) {
        Src::imm(rng.gen_range(-8..64))
    } else {
        Src::reg(data_reg(rng))
    }
}

fn rand_alu(rng: &mut StdRng) -> AluOp {
    const OPS: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Slt,
        AluOp::Mul,
        AluOp::Sra,
    ];
    OPS[rng.gen_range(0..OPS.len())]
}

fn rand_cmp(rng: &mut StdRng) -> CmpOp {
    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    OPS[rng.gen_range(0..OPS.len())]
}

/// A bounded memory access: masks a data register into one of the two
/// address windows.  Loads and the occasional store share the load window
/// (same tag), so speculatively hoisted loads must be disambiguated
/// against stores through the predicated store buffer.
fn rand_ops(rng: &mut StdRng, count: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..count {
        match rng.gen_range(0..10) {
            0..=4 => ops.push(Op::Alu {
                op: rand_alu(rng),
                rd: data_reg(rng),
                a: rand_src(rng),
                b: rand_src(rng),
            }),
            5..=7 => {
                // Load from the (possibly faulting) load window, tag 1.
                let src = data_reg(rng);
                ops.push(Op::Alu {
                    op: AluOp::And,
                    rd: r(ADDR_REG),
                    a: Src::reg(src),
                    b: Src::imm(WINDOW_MASK),
                });
                ops.push(Op::Load {
                    rd: data_reg(rng),
                    base: Src::reg(r(ADDR_REG)),
                    offset: LOAD_BASE,
                    tag: MemTag(1),
                });
            }
            8 => {
                // Store aliasing the load window, tag 1: exercises
                // store-buffer forwarding and the scheduler's memory
                // dependence discipline.
                let src = data_reg(rng);
                ops.push(Op::Alu {
                    op: AluOp::And,
                    rd: r(ADDR_REG),
                    a: Src::reg(src),
                    b: Src::imm(WINDOW_MASK),
                });
                ops.push(Op::Store {
                    base: Src::reg(r(ADDR_REG)),
                    offset: LOAD_BASE,
                    value: rand_src(rng),
                    tag: MemTag(1),
                });
            }
            _ => {
                // Store into the disjoint store window, tag 2.
                let src = data_reg(rng);
                ops.push(Op::Alu {
                    op: AluOp::And,
                    rd: r(ADDR_REG),
                    a: Src::reg(src),
                    b: Src::imm(WINDOW_MASK),
                });
                ops.push(Op::Store {
                    base: Src::reg(r(ADDR_REG)),
                    offset: STORE_BASE,
                    value: rand_src(rng),
                    tag: MemTag(2),
                });
            }
        }
    }
    ops
}

/// Appends a random number (`lo..=hi`) of random ops to `block`.
fn fill(pb: &mut ProgramBuilder, block: psb_isa::BlockId, rng: &mut StdRng, lo: usize, hi: usize) {
    let count = rng.gen_range(lo..=hi);
    let ops = rand_ops(rng, count);
    let mut bb = pb.block_mut(block);
    for op in ops {
        bb = bb.push(op);
    }
}

/// Generates the fuzz case for `seed`.
///
/// The program is a chain of 3–7 fragments chosen among five shapes
/// (straight line, diamond, nested diamond, triangle, counted loop with a
/// data-dependent early exit), with every data register live-out.  With
/// 70% probability, 2–6 addresses of the load window fault once.
pub fn gen_case(seed: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pb = ProgramBuilder::new(format!("fuzz-{seed}"));
    pb.memory_size(128);
    for a in 1..128 {
        pb.mem_cell(a, rng.gen_range(-100..100));
    }
    for i in 1..=DATA_REGS {
        pb.init_reg(r(i), rng.gen_range(-50..50));
    }

    let entry = pb.new_block();
    let mut cur = entry;
    let fragments = rng.gen_range(3..=7);
    for _ in 0..fragments {
        cur = match rng.gen_range(0..6) {
            0 => {
                // Straight-line fragment.
                let next = pb.new_block();
                fill(&mut pb, cur, &mut rng, 1, 5);
                pb.block_mut(cur).jump(next);
                next
            }
            1 | 2 => {
                // Diamond.
                let then_b = pb.new_block();
                let else_b = pb.new_block();
                let join = pb.new_block();
                let cmp = rand_cmp(&mut rng);
                let a = Src::reg(data_reg(&mut rng));
                let b = rand_src(&mut rng);
                pb.block_mut(cur).branch(cmp, a, b, then_b, else_b);
                fill(&mut pb, then_b, &mut rng, 1, 4);
                pb.block_mut(then_b).jump(join);
                fill(&mut pb, else_b, &mut rng, 1, 4);
                pb.block_mut(else_b).jump(join);
                join
            }
            3 => {
                // Nested diamond: the then arm branches again before the
                // outer join, so the region formers see a 2-deep condition
                // tree and tail-duplicating merges.
                let then_b = pb.new_block();
                let else_b = pb.new_block();
                let inner_t = pb.new_block();
                let inner_e = pb.new_block();
                let join = pb.new_block();
                let a = Src::reg(data_reg(&mut rng));
                pb.block_mut(cur)
                    .branch(rand_cmp(&mut rng), a, rand_src(&mut rng), then_b, else_b);
                fill(&mut pb, then_b, &mut rng, 1, 3);
                let a2 = Src::reg(data_reg(&mut rng));
                pb.block_mut(then_b).branch(
                    rand_cmp(&mut rng),
                    a2,
                    rand_src(&mut rng),
                    inner_t,
                    inner_e,
                );
                fill(&mut pb, inner_t, &mut rng, 1, 3);
                pb.block_mut(inner_t).jump(join);
                fill(&mut pb, inner_e, &mut rng, 1, 3);
                pb.block_mut(inner_e).jump(join);
                fill(&mut pb, else_b, &mut rng, 1, 3);
                pb.block_mut(else_b).jump(join);
                join
            }
            4 => {
                // Triangle (one-armed if): the fall-through edge reaches
                // the join directly, the classic tail-duplication trigger.
                let then_b = pb.new_block();
                let join = pb.new_block();
                let a = Src::reg(data_reg(&mut rng));
                pb.block_mut(cur)
                    .branch(rand_cmp(&mut rng), a, rand_src(&mut rng), then_b, join);
                fill(&mut pb, then_b, &mut rng, 1, 4);
                pb.block_mut(then_b).jump(join);
                join
            }
            _ => {
                // Counted loop with a data-dependent early exit.
                let body = pb.new_block();
                let latch = pb.new_block();
                let next = pb.new_block();
                let n: i64 = rng.gen_range(2..=6);
                pb.block_mut(cur).copy(r(LOOP_REG), 0).jump(body);
                fill(&mut pb, body, &mut rng, 1, 4);
                let e = Src::reg(data_reg(&mut rng));
                // Early exit straight to `next` when the data test fires.
                pb.block_mut(body)
                    .branch(rand_cmp(&mut rng), e, rand_src(&mut rng), next, latch);
                fill(&mut pb, latch, &mut rng, 0, 2);
                pb.block_mut(latch)
                    .alu(AluOp::Add, r(LOOP_REG), r(LOOP_REG), 1)
                    .branch(CmpOp::Lt, r(LOOP_REG), n, body, next);
                next
            }
        };
    }
    pb.block_mut(cur).halt();
    pb.set_entry(entry);
    pb.live_out((1..=DATA_REGS).map(r));
    let program = pb.finish().expect("generated program must validate");

    let mut fault_once = BTreeSet::new();
    if rng.gen_bool(0.7) {
        for _ in 0..rng.gen_range(2..=6) {
            fault_once.insert(LOAD_BASE + rng.gen_range(0..=WINDOW_MASK));
        }
    }
    FuzzCase {
        program,
        fault_once,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen_case(42);
        let b = gen_case(42);
        assert_eq!(a.program, b.program);
        assert_eq!(a.fault_once, b.fault_once);
    }

    #[test]
    fn generated_programs_validate_and_differ() {
        let mut shapes = BTreeSet::new();
        for seed in 0..50 {
            let case = gen_case(seed);
            case.program.validate().unwrap();
            shapes.insert(case.program.blocks.len());
        }
        assert!(shapes.len() > 3, "degenerate generator: {shapes:?}");
    }

    #[test]
    fn fault_addresses_stay_in_the_load_window() {
        for seed in 0..50 {
            let case = gen_case(seed);
            for &a in &case.fault_once {
                assert!((LOAD_BASE..=LOAD_BASE + WINDOW_MASK).contains(&a));
            }
        }
    }
}
