//! Regression-corpus persistence.
//!
//! A repro is a pair of files in `corpus/regressions/`: a `.asm` program
//! in the workspace assembly format (round-trips through
//! [`ScalarProgram::to_asm`] / [`psb_isa::parse_program`]) and an
//! optional `.cfg` sidecar holding the machine configuration the failure
//! needs — currently the fault-once address set — plus `#`-comment lines
//! recording the failure the repro was minimized from.  Entries are
//! deterministic text, so re-minimizing the same bug produces an
//! identical diff.

use crate::gen::FuzzCase;
use psb_isa::parse_program;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes `case` into `dir` as `<name>.asm` (+ `<name>.cfg` when the case
/// carries fault addresses or a failure note), creating `dir` if needed.
///
/// Returns the path of the `.asm` file.
///
/// # Errors
///
/// Any I/O error creating the directory or writing the files.
pub fn write_repro(dir: &Path, case: &FuzzCase, failure: Option<&str>) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let name: String = case
        .program
        .name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let asm_path = dir.join(format!("{name}.asm"));
    fs::write(&asm_path, case.program.to_asm())?;
    if !case.fault_once.is_empty() || failure.is_some() {
        let mut cfg = String::from("# psb-fuzz repro configuration\n");
        if let Some(f) = failure {
            for line in f.lines() {
                cfg.push_str(&format!("# failure: {line}\n"));
            }
        }
        for a in &case.fault_once {
            cfg.push_str(&format!("fault_once {a}\n"));
        }
        fs::write(asm_path.with_extension("cfg"), cfg)?;
    }
    Ok(asm_path)
}

/// Loads one repro from its `.asm` path, picking up the `.cfg` sidecar if
/// present.
///
/// # Errors
///
/// A rendered message on I/O failure, assembly parse failure, or an
/// unrecognized sidecar directive.
pub fn load_repro(asm_path: &Path) -> Result<FuzzCase, String> {
    let text = fs::read_to_string(asm_path).map_err(|e| format!("{}: {e}", asm_path.display()))?;
    let program = parse_program(&text).map_err(|e| format!("{}: {e}", asm_path.display()))?;
    let mut fault_once = BTreeSet::new();
    let cfg_path = asm_path.with_extension("cfg");
    if cfg_path.exists() {
        let cfg =
            fs::read_to_string(&cfg_path).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
        for (lineno, line) in cfg.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                ["fault_once", addr] => {
                    let a: i64 = addr.parse().map_err(|_| {
                        format!("{}:{}: bad address {addr}", cfg_path.display(), lineno + 1)
                    })?;
                    fault_once.insert(a);
                }
                _ => {
                    return Err(format!(
                        "{}:{}: unknown directive: {line}",
                        cfg_path.display(),
                        lineno + 1
                    ))
                }
            }
        }
    }
    Ok(FuzzCase {
        program,
        fault_once,
    })
}

/// Loads every `.asm` entry under `dir`, sorted by file name so replay
/// order (and therefore replay reports) is deterministic.
///
/// # Errors
///
/// A rendered message if the directory cannot be read or any entry fails
/// to load.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, FuzzCase)>, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "asm"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| load_repro(&p).map(|c| (p, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("psb-fuzz-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn repros_roundtrip_through_disk() {
        let dir = temp_dir("roundtrip");
        let case = gen_case(7);
        let path = write_repro(&dir, &case, Some("demo: diverged")).unwrap();
        let back = load_repro(&path).unwrap();
        assert_eq!(back.program, case.program);
        assert_eq!(back.fault_once, case.fault_once);
        let all = load_corpus(&dir).unwrap();
        assert_eq!(all.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_order_is_sorted_by_name() {
        let dir = temp_dir("sorted");
        for seed in [3u64, 1, 2] {
            write_repro(&dir, &gen_case(seed), None).unwrap();
        }
        let names: Vec<String> = load_corpus(&dir)
            .unwrap()
            .iter()
            .map(|(p, _)| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        fs::remove_dir_all(&dir).unwrap();
    }
}
