//! Regression-corpus persistence.
//!
//! A repro is a pair of files in `corpus/regressions/`: a `.asm` program
//! in the workspace assembly format (round-trips through
//! [`ScalarProgram::to_asm`] / [`psb_isa::parse_program`]) and an
//! optional `.cfg` sidecar holding the machine configuration the failure
//! needs — currently the fault-once address set — plus `#`-comment lines
//! recording the failure the repro was minimized from.  Entries are
//! deterministic text, so re-minimizing the same bug produces an
//! identical diff.
//!
//! Loading is hostile-entry safe: a corpus directory may contain entries
//! that are not loadable repros at all (subdirectories named `*.asm`,
//! non-UTF-8 file names, dangling symlinks).  [`scan_corpus`] skips those
//! with a per-entry reason instead of panicking or mangling names, and
//! reserves hard errors ([`CorpusError`]) for real corpus corruption — an
//! entry that *is* a repro file but fails to parse.

use crate::gen::FuzzCase;
use psb_isa::parse_program;
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A corpus entry (or the directory scan itself) that failed to load.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusError {
    /// The offending path (the directory itself for scan failures).
    pub path: PathBuf,
    /// What went wrong.
    pub message: String,
}

impl CorpusError {
    fn new(path: &Path, message: impl Into<String>) -> CorpusError {
        CorpusError {
            path: path.to_path_buf(),
            message: message.into(),
        }
    }
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for CorpusError {}

/// The outcome of scanning a corpus directory: the loadable cases plus
/// every entry that was skipped, with the reason.
#[derive(Clone, Debug, Default)]
pub struct CorpusScan {
    /// Successfully loaded repros, sorted by path for deterministic
    /// replay order.
    pub cases: Vec<(PathBuf, FuzzCase)>,
    /// Entries skipped because they are not loadable corpus members
    /// (non-UTF-8 names, non-files), with a human-readable reason each.
    pub skipped: Vec<(PathBuf, String)>,
}

/// Writes `case` into `dir` as `<name>.asm` (+ `<name>.cfg` when the case
/// carries fault addresses or a failure note), creating `dir` if needed.
///
/// Returns the path of the `.asm` file.
///
/// # Errors
///
/// Any I/O error creating the directory or writing the files.
pub fn write_repro(dir: &Path, case: &FuzzCase, failure: Option<&str>) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let name: String = case
        .program
        .name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let asm_path = dir.join(format!("{name}.asm"));
    fs::write(&asm_path, case.program.to_asm())?;
    if !case.fault_once.is_empty() || failure.is_some() {
        let mut cfg = String::from("# psb-fuzz repro configuration\n");
        if let Some(f) = failure {
            for line in f.lines() {
                cfg.push_str(&format!("# failure: {line}\n"));
            }
        }
        for a in &case.fault_once {
            cfg.push_str(&format!("fault_once {a}\n"));
        }
        fs::write(asm_path.with_extension("cfg"), cfg)?;
    }
    Ok(asm_path)
}

/// Loads one repro from its `.asm` path, picking up the `.cfg` sidecar if
/// present.
///
/// # Errors
///
/// A [`CorpusError`] on I/O failure, assembly parse failure, or an
/// unrecognized sidecar directive.
pub fn load_repro(asm_path: &Path) -> Result<FuzzCase, CorpusError> {
    let text =
        fs::read_to_string(asm_path).map_err(|e| CorpusError::new(asm_path, e.to_string()))?;
    let program = parse_program(&text).map_err(|e| CorpusError::new(asm_path, e.to_string()))?;
    let mut fault_once = BTreeSet::new();
    let cfg_path = asm_path.with_extension("cfg");
    if cfg_path.exists() {
        let cfg = fs::read_to_string(&cfg_path)
            .map_err(|e| CorpusError::new(&cfg_path, e.to_string()))?;
        for (lineno, line) in cfg.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                ["fault_once", addr] => {
                    let a: i64 = addr.parse().map_err(|_| {
                        CorpusError::new(
                            &cfg_path,
                            format!("line {}: bad address {addr}", lineno + 1),
                        )
                    })?;
                    fault_once.insert(a);
                }
                _ => {
                    return Err(CorpusError::new(
                        &cfg_path,
                        format!("line {}: unknown directive: {line}", lineno + 1),
                    ))
                }
            }
        }
    }
    Ok(FuzzCase {
        program,
        fault_once,
    })
}

/// Scans `dir` for `.asm` repros, sorted by path so replay order (and
/// therefore replay reports) is deterministic.
///
/// Directory entries with an `.asm` extension that are not loadable
/// repros — entries whose file name is not valid UTF-8 (reports would
/// silently mangle them) and entries that are not regular files (e.g. a
/// subdirectory named `foo.asm`, or a dangling symlink) — are *skipped*
/// and reported in [`CorpusScan::skipped`] rather than treated as
/// corruption.  Entries without an `.asm` extension (such as `.cfg`
/// sidecars) are ignored silently, as before.
///
/// # Errors
///
/// A [`CorpusError`] if the directory cannot be read, or if a scanned
/// repro file fails to parse (a corrupt corpus is an error, not a skip).
pub fn scan_corpus(dir: &Path) -> Result<CorpusScan, CorpusError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| CorpusError::new(dir, e.to_string()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "asm"))
        .collect();
    paths.sort();
    let mut scan = CorpusScan::default();
    for p in paths {
        if p.file_name().and_then(|n| n.to_str()).is_none() {
            scan.skipped
                .push((p, "file name is not valid UTF-8".to_string()));
            continue;
        }
        match fs::metadata(&p) {
            Ok(m) if m.is_file() => {}
            Ok(_) => {
                scan.skipped.push((p, "not a regular file".to_string()));
                continue;
            }
            Err(e) => {
                scan.skipped.push((p, format!("unreadable: {e}")));
                continue;
            }
        }
        let case = load_repro(&p)?;
        scan.cases.push((p, case));
    }
    Ok(scan)
}

/// Loads every `.asm` entry under `dir`, sorted by file name.  Skipped
/// entries (see [`scan_corpus`]) are reported on stderr rather than
/// aborting the load.
///
/// # Errors
///
/// See [`scan_corpus`].
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, FuzzCase)>, CorpusError> {
    let scan = scan_corpus(dir)?;
    for (path, reason) in &scan.skipped {
        eprintln!("corpus: skipping {}: {reason}", path.display());
    }
    Ok(scan.cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("psb-fuzz-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn repros_roundtrip_through_disk() {
        let dir = temp_dir("roundtrip");
        let case = gen_case(7);
        let path = write_repro(&dir, &case, Some("demo: diverged")).unwrap();
        let back = load_repro(&path).unwrap();
        assert_eq!(back.program, case.program);
        assert_eq!(back.fault_once, case.fault_once);
        let all = load_corpus(&dir).unwrap();
        assert_eq!(all.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_order_is_sorted_by_name() {
        let dir = temp_dir("sorted");
        for seed in [3u64, 1, 2] {
            write_repro(&dir, &gen_case(seed), None).unwrap();
        }
        let loaded = load_corpus(&dir).unwrap();
        let mut sorted: Vec<PathBuf> = loaded.iter().map(|(p, _)| p.clone()).collect();
        sorted.sort();
        assert_eq!(
            loaded.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            sorted.iter().collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_entries_are_skipped_with_report() {
        let dir = temp_dir("hostile");
        let good = write_repro(&dir, &gen_case(11), None).unwrap();
        // A subdirectory masquerading as a repro.
        fs::create_dir_all(dir.join("imposter.asm")).unwrap();
        // A non-UTF-8 file name (Unix lets us create one directly).
        #[cfg(unix)]
        {
            use std::ffi::OsStr;
            use std::os::unix::ffi::OsStrExt;
            let bad = dir.join(OsStr::from_bytes(b"bad\xff.asm"));
            fs::write(&bad, "not even parsed").unwrap();
        }
        let scan = scan_corpus(&dir).unwrap();
        assert_eq!(scan.cases.len(), 1);
        assert_eq!(scan.cases[0].0, good);
        let expected_skips = if cfg!(unix) { 2 } else { 1 };
        assert_eq!(scan.skipped.len(), expected_skips, "{:?}", scan.skipped);
        assert!(scan
            .skipped
            .iter()
            .any(|(p, reason)| p.ends_with("imposter.asm") && reason == "not a regular file"));
        #[cfg(unix)]
        assert!(scan
            .skipped
            .iter()
            .any(|(_, reason)| reason == "file name is not valid UTF-8"));
        // The convenience wrapper must not panic or error on the same dir.
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_repro_is_an_error_not_a_skip() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("broken.asm"), "this is not assembly").unwrap();
        let err = scan_corpus(&dir).unwrap_err();
        assert!(err.path.ends_with("broken.asm"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
