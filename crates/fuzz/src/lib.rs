//! Differential fuzzing for the predicated state-buffering machine.
//!
//! The crate closes the correctness loop the workloads' differentials
//! only sample: a seeded structured generator ([`gen_case`]) produces
//! region-shaped programs with speculative exceptions baked in, the
//! lockstep driver ([`run_case`]) runs each one through profile →
//! schedule (every model) → VLIW execution against the scalar golden
//! model with an online [`psb_core::InvariantSink`] attached, and the
//! delta-debugging shrinker ([`shrink_case`]) reduces any failure to a
//! minimal repro that [`write_repro`] persists as deterministic text
//! under `corpus/regressions/`.
//!
//! Orchestration (parallel fan-out, time budgets, the `repro fuzz` CLI)
//! lives in `psb-eval`; this crate deliberately stays per-case so its
//! pieces compose.

#![warn(missing_docs)]

mod corpus;
mod diff;
mod gen;
mod shrink;

pub use corpus::{load_corpus, load_repro, scan_corpus, write_repro, CorpusError, CorpusScan};
pub use diff::{memory_rotation, run_case, CaseStats, DiffConfig, FuzzFailure};
pub use gen::{gen_case, FuzzCase, DATA_REGS};
pub use shrink::{class_of, shrink_case, FailureClass};
