//! The lockstep differential driver.
//!
//! One fuzz case runs through the whole toolchain for every scheduling
//! model: scalar golden execution (which also yields the edge profile the
//! schedulers train on) → [`psb_compile::compile`] → the artifact's
//! machine with an attached [`InvariantSink`].  A case passes only if
//! every model's VLIW execution reproduces `observable(live_out)` *and*
//! its event stream satisfies all online invariants — the latter catches
//! bugs that cancel out by the end of the run (a stale shadow clobbering
//! a value that is dead afterwards, a lost exception whose handler would
//! have been a no-op, …).

use crate::gen::FuzzCase;
use psb_compile::{compile, ArtifactCache, CompileError, CompileRequest, ProfileSource};
use psb_core::{CacheConfig, Engine, InvariantSink, MachineConfig, MemoryModel, ShadowMode};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use std::fmt;
use std::sync::Arc;

/// The memory-model rotation shared by the differential suites and the
/// nightly fuzz sweep: perfect memory, a fixed-latency bus, and small
/// I$+D$ caches (tiny on purpose, so conflict and capacity misses —
/// not just cold ones — occur on fuzz-sized programs).  The observable
/// end state is timing-independent, so every rotation step must agree
/// with the scalar golden model; what rotation buys is coverage of the
/// stall machinery the models exercise differently.
pub fn memory_rotation(k: u64) -> MemoryModel {
    match k % 3 {
        0 => MemoryModel::Perfect,
        1 => MemoryModel::FixedLatency { load: 3, fetch: 2 },
        _ => MemoryModel::Cache {
            icache: Some(CacheConfig {
                sets: 8,
                ways: 1,
                line_words: 2,
                hit_latency: 1,
                miss_latency: 4,
            }),
            dcache: Some(CacheConfig {
                sets: 4,
                ways: 2,
                line_words: 2,
                hit_latency: 1,
                miss_latency: 6,
            }),
        },
    }
}

/// Default artifact-cache capacity for fuzzing.  Bounded (unlike the
/// experiment sweeps) because a long fuzz run visits millions of distinct
/// programs; FIFO eviction keeps memory flat while the shrinker's
/// repeated trials on the *same* mutated program still hit.
const FUZZ_CACHE_CAPACITY: usize = 512;

/// Configuration of one differential run.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// The scheduling models to drive (default: all seven).
    pub models: Vec<Model>,
    /// Activates the machine's test-only
    /// [`defer_recovery_exit_commit`](MachineConfig::defer_recovery_exit_commit)
    /// fault injection, so the harness can prove it catches the
    /// stale-shadow recovery-exit bug.
    pub inject_recovery_bug: bool,
    /// Cycle cap applied to both machines (`None` = the machines'
    /// defaults).  The shrinker sets a low cap so that a mutation which
    /// accidentally creates an infinite loop fails fast instead of
    /// spinning for the default two hundred million cycles.
    pub max_cycles: Option<u64>,
    /// The issue engine driving the VLIW side of the differential
    /// (default: [`Engine::default`]).  The nightly sweep rotates this so
    /// every engine's issue path gets long-run fuzz coverage.
    pub engine: Engine,
    /// The memory timing model on the VLIW side (default:
    /// [`MemoryModel::Perfect`]).  The nightly sweep rotates this via
    /// [`memory_rotation`]; the observable differential is
    /// timing-independent, so every model must still match the scalar
    /// golden run.
    pub memory: MemoryModel,
    /// The artifact cache shared by every case run under this config
    /// (bounded — see [`DiffConfig::default`]).  Cloning the config
    /// shares the cache, so parallel sweep workers deduplicate compiles.
    pub cache: Arc<ArtifactCache>,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            models: Model::ALL.to_vec(),
            inject_recovery_bug: false,
            max_cycles: None,
            engine: Engine::default(),
            memory: MemoryModel::Perfect,
            cache: Arc::new(ArtifactCache::with_capacity(FUZZ_CACHE_CAPACITY)),
        }
    }
}

/// Why a case failed.  Divergence and invariant details are captured as
/// text so reports stay deterministic; compile failures keep the typed
/// [`CompileError`] so shrinker trials can distinguish a pipeline
/// rejection from a machine divergence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FuzzFailure {
    /// The scalar golden model itself rejected the program.
    Scalar(String),
    /// The compilation pipeline rejected the program for one model.
    Compile {
        /// The model that failed.
        model: Model,
        /// The stage-tagged pipeline error.
        error: CompileError,
    },
    /// The VLIW machine raised a hard error.
    Machine {
        /// The model whose code failed.
        model: Model,
        /// The machine error.
        message: String,
    },
    /// The observable end state diverged from the golden model.
    Diverged {
        /// The model whose code diverged.
        model: Model,
        /// Rendered expected vs got summary.
        detail: String,
    },
    /// The event stream violated an online invariant.
    Invariant {
        /// The model whose execution misbehaved.
        model: Model,
        /// Rendered violations (first few).
        detail: String,
    },
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzFailure::Scalar(m) => write!(f, "scalar: {m}"),
            FuzzFailure::Compile { model, error } => write!(f, "{model}: compile: {error}"),
            FuzzFailure::Machine { model, message } => write!(f, "{model}: machine: {message}"),
            FuzzFailure::Diverged { model, detail } => write!(f, "{model}: diverged: {detail}"),
            FuzzFailure::Invariant { model, detail } => write!(f, "{model}: invariant: {detail}"),
        }
    }
}

/// Counters aggregated over all models of one passing case, used by the
/// fuzz report to show how much speculation machinery a run exercised.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CaseStats {
    /// Recovery episodes across all models.
    pub recoveries: u64,
    /// Non-fatal faults handled across all models.
    pub faults: u64,
    /// Buffered commits across all models.
    pub commits: u64,
    /// Buffered squashes across all models.
    pub squashes: u64,
}

fn render_observable(expected: &(Vec<i64>, Vec<i64>), got: &(Vec<i64>, Vec<i64>)) -> String {
    if expected.0 != got.0 {
        for (i, (e, g)) in expected.0.iter().zip(&got.0).enumerate() {
            if e != g {
                return format!("live-out #{i}: expected {e}, got {g}");
            }
        }
    }
    for (addr, (e, g)) in expected.1.iter().zip(&got.1).enumerate() {
        if e != g {
            return format!("memory[{addr}]: expected {e}, got {g}");
        }
    }
    "live-out arity mismatch".into()
}

/// Runs `case` through every configured model and checks both the
/// end-state differential and the online invariants.
///
/// # Errors
///
/// The first [`FuzzFailure`] encountered, in model order — deterministic
/// for a given case and config.
pub fn run_case(case: &FuzzCase, cfg: &DiffConfig) -> Result<CaseStats, FuzzFailure> {
    let prog = &case.program;
    let mut scfg = ScalarConfig {
        fault_once_addrs: case.fault_once.clone(),
        ..ScalarConfig::default()
    };
    if let Some(cap) = cfg.max_cycles {
        scfg.max_cycles = cap;
    }
    let scalar = ScalarMachine::new(prog, scfg)
        .run()
        .map_err(|e| FuzzFailure::Scalar(e.to_string()))?;
    let expected = scalar.observable(&prog.live_out);

    let mut stats = CaseStats::default();
    for &model in &cfg.models {
        let sched_cfg = SchedConfig::new(model);
        let single_shadow = sched_cfg.single_shadow;
        let req = CompileRequest {
            program: prog,
            // The golden run above already produced the profile; reuse it
            // instead of paying for a second scalar execution per model.
            profile: ProfileSource::Provided(&scalar.edge_profile),
            sched: sched_cfg,
        };
        let art =
            compile(&req, &cfg.cache).map_err(|error| FuzzFailure::Compile { model, error })?;
        let mut mcfg = MachineConfig {
            shadow_mode: if single_shadow {
                ShadowMode::Single
            } else {
                ShadowMode::Infinite
            },
            fault_once_addrs: case.fault_once.clone(),
            defer_recovery_exit_commit: cfg.inject_recovery_bug,
            engine: cfg.engine,
            memory: cfg.memory,
            ..MachineConfig::default()
        };
        if let Some(cap) = cfg.max_cycles {
            mcfg.max_cycles = cap;
        }
        let sink = InvariantSink::new(art.program.num_conds, single_shadow);
        let (res, mut sink) = art
            .run_with_sink(mcfg, sink)
            .map_err(|e| FuzzFailure::Machine {
                model,
                message: e.to_string(),
            })?;
        let violations = sink.finalize();
        if !violations.is_empty() {
            let detail = violations
                .iter()
                .take(3)
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            return Err(FuzzFailure::Invariant { model, detail });
        }
        let got = res.observable(&prog.live_out);
        if got != expected {
            return Err(FuzzFailure::Diverged {
                model,
                detail: render_observable(&expected, &got),
            });
        }
        stats.recoveries += res.recoveries;
        stats.faults += res.faults_handled;
        stats.commits += res.commits;
        stats.squashes += res.squashes;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    #[test]
    fn a_spread_of_seeds_passes_all_models() {
        let cfg = DiffConfig::default();
        let mut recoveries = 0;
        for seed in 0..30 {
            let case = gen_case(seed);
            let stats = run_case(&case, &cfg)
                .unwrap_or_else(|f| panic!("seed {seed} failed clean machine: {f}"));
            recoveries += stats.recoveries;
        }
        assert!(
            recoveries > 0,
            "no recovery episode in 30 seeds: generator too tame"
        );
        let cs = cfg.cache.stats();
        assert_eq!(
            cs.misses,
            30 * Model::ALL.len() as u64,
            "every (case, model) point is a distinct compile"
        );
    }

    #[test]
    fn rotated_memory_models_still_match_the_golden_run() {
        for k in 1..3 {
            let cfg = DiffConfig {
                memory: memory_rotation(k),
                ..DiffConfig::default()
            };
            for seed in 0..10 {
                let case = gen_case(seed);
                run_case(&case, &cfg).unwrap_or_else(|f| {
                    panic!("seed {seed} failed under {}: {f}", memory_rotation(k))
                });
            }
        }
    }

    #[test]
    fn injected_recovery_bug_is_caught() {
        let cfg = DiffConfig {
            inject_recovery_bug: true,
            ..DiffConfig::default()
        };
        let caught = (0..40).any(|seed| run_case(&gen_case(seed), &cfg).is_err());
        assert!(caught, "40 seeds survived the deferred-exit-commit bug");
    }
}
