//! Differential proof that a batched lane is its solo run.
//!
//! The batched lockstep engine drives N machine configurations over one
//! shared decoded arena with [`VliwMachine::step_cycle`] — the same
//! single-cycle function the solo runner loops over — so a lane's
//! trajectory should be byte-equal to its solo run by construction.
//! This suite holds it to that: on randomly generated fuzz programs
//! (speculative exceptions, recoveries, region exits included), every
//! lane of a random configuration grid must produce a [`VliwResult`]
//! identical to the same configuration run solo — cycles, every
//! counter, final registers, final memory, and the **recorded event
//! log** — under every scheduling model, every engine, and random
//! lockstep strides.
//!
//! [`VliwMachine::step_cycle`]: psb_core::VliwMachine::step_cycle

use proptest::prelude::*;
use psb_compile::{compile_fresh, CompileRequest, CompiledArtifact, ProfileSource};
use psb_core::{BatchedMachine, CommitScan, Engine, MachineConfig, ShadowMode};
use psb_fuzz::{gen_case, memory_rotation};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use std::collections::BTreeSet;

const ENGINES: [Engine; 3] = [Engine::Legacy, Engine::Predecoded, Engine::Tabled];

/// A small config grid derived from the seed: engines × store-buffer
/// depths, with commit scan and load latency varied across lanes.
/// Event recording is on everywhere so the equality check covers the
/// event stream, not just counters.
///
/// A shallow store buffer can genuinely livelock a model that keeps
/// more speculative stores in flight than the buffer holds (they only
/// drain at commit), so the cycle limit is lowered from the 200M
/// default: such lanes retire quickly with `CycleLimit`, and the test
/// then checks the batched lane fails *identically* to its solo run.
fn lane_grid(seed: u64, single_shadow: bool, fault_once: &BTreeSet<i64>) -> Vec<MachineConfig> {
    let sbs: &[usize] = match seed % 3 {
        0 => &[1, 4],
        1 => &[2, 16],
        _ => &[3, 8],
    };
    let mut cfgs = Vec::new();
    for (i, &engine) in ENGINES.iter().enumerate() {
        for (j, &sb) in sbs.iter().enumerate() {
            cfgs.push(MachineConfig {
                shadow_mode: if single_shadow {
                    ShadowMode::Single
                } else {
                    ShadowMode::Infinite
                },
                fault_once_addrs: fault_once.clone(),
                record_events: true,
                engine,
                store_buffer_size: sb,
                commit_scan: if (i + j) % 2 == 0 {
                    CommitScan::Indexed
                } else {
                    CommitScan::Naive
                },
                load_latency: 1 + ((seed + i as u64 + j as u64) % 3),
                // Lanes also rotate the memory model, so batched cache
                // state (per-lane, inside each lane's machine) is held
                // byte-equal to solo runs alongside everything else.
                memory: memory_rotation(seed + i as u64 + j as u64),
                max_cycles: 100_000,
                ..MachineConfig::default()
            });
        }
    }
    cfgs
}

/// Runs `cfgs` as lanes of one batch (at `stride`) and solo, and
/// asserts every lane byte-equal to its solo run.
fn assert_lanes_match_solo(
    art: &CompiledArtifact,
    cfgs: &[MachineConfig],
    stride: u64,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let report = BatchedMachine::new(&art.program, art.decoded.clone(), cfgs)
        .with_stride(stride)
        .run();
    prop_assert_eq!(report.lanes.len(), cfgs.len(), "{}: lane count", ctx);
    for (i, (outcome, cfg)) in report.lanes.into_iter().zip(cfgs).enumerate() {
        let solo = art.run(cfg.clone());
        match (outcome, solo) {
            (Ok((lane, _)), Ok(solo)) => {
                // VliwResult equality covers cycles, all RunStats
                // counters, final registers, final memory AND the
                // recorded event log.
                prop_assert_eq!(
                    &lane,
                    &solo,
                    "{}: lane {} ({:?}, sb={}) diverged from its solo run",
                    ctx,
                    i,
                    cfg.engine,
                    cfg.store_buffer_size
                );
            }
            (Err(lane_err), Err(solo_err)) => {
                prop_assert_eq!(
                    lane_err.to_string(),
                    solo_err.to_string(),
                    "{}: lane {} error differs from solo",
                    ctx,
                    i
                );
            }
            (lane, solo) => {
                return Err(TestCaseError::fail(format!(
                    "{ctx}: lane {i} ok/err mismatch: batch ok={} solo ok={}",
                    lane.is_ok(),
                    solo.is_ok()
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn batched_lanes_match_solo_runs(seed in 0u64..2000, stride in 1u64..200) {
        let case = gen_case(seed);
        let prog = &case.program;
        let scalar = ScalarMachine::new(prog, ScalarConfig {
            fault_once_addrs: case.fault_once.clone(),
            ..ScalarConfig::default()
        })
        .run()
        .expect("generated case runs on the scalar machine");

        for model in Model::ALL {
            let sched_cfg = SchedConfig::new(model);
            let single_shadow = sched_cfg.single_shadow;
            let art = compile_fresh(&CompileRequest {
                program: prog,
                profile: ProfileSource::Provided(&scalar.edge_profile),
                sched: sched_cfg,
            })
            .expect("generated case compiles");
            let cfgs = lane_grid(seed, single_shadow, &case.fault_once);
            let ctx = format!("seed {seed} model {model} stride {stride}");
            assert_lanes_match_solo(&art, &cfgs, stride, &ctx)?;
        }
    }
}

/// The curated regression corpus (hand-written + shrunk fuzz repros,
/// heavy on recovery interleavings) replayed through the batched path:
/// the three engines run as lanes of one batch, and each lane must
/// equal its solo run.
#[test]
fn corpus_cases_replay_through_the_batched_path() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/regressions");
    let cases = psb_fuzz::load_corpus(&dir).expect("corpus loads");
    assert!(!cases.is_empty(), "corpus must not be empty");
    for (path, case) in &cases {
        let name = path.display();
        let prog = &case.program;
        let scalar = ScalarMachine::new(
            prog,
            ScalarConfig {
                fault_once_addrs: case.fault_once.clone(),
                ..ScalarConfig::default()
            },
        )
        .run()
        .unwrap_or_else(|e| panic!("{name}: scalar run failed: {e}"));
        for model in Model::ALL {
            let sched_cfg = SchedConfig::new(model);
            let single_shadow = sched_cfg.single_shadow;
            let art = compile_fresh(&CompileRequest {
                program: prog,
                profile: ProfileSource::Provided(&scalar.edge_profile),
                sched: sched_cfg,
            })
            .unwrap_or_else(|e| panic!("{name}: {model} failed to compile: {e}"));
            let cfgs: Vec<MachineConfig> = ENGINES
                .iter()
                .map(|&engine| MachineConfig {
                    shadow_mode: if single_shadow {
                        ShadowMode::Single
                    } else {
                        ShadowMode::Infinite
                    },
                    fault_once_addrs: case.fault_once.clone(),
                    record_events: true,
                    engine,
                    ..MachineConfig::default()
                })
                .collect();
            let report = art.run_batch(&cfgs);
            let mut results = Vec::new();
            for (outcome, cfg) in report.lanes.into_iter().zip(&cfgs) {
                let (lane, _) =
                    outcome.unwrap_or_else(|e| panic!("{name}: {model} batched lane failed: {e}"));
                let solo = art
                    .run(cfg.clone())
                    .unwrap_or_else(|e| panic!("{name}: {model} solo run failed: {e}"));
                assert_eq!(
                    lane, solo,
                    "{name}: {model} lane ({:?}) diverged from its solo run",
                    cfg.engine
                );
                results.push(lane);
            }
            // And the lanes (one per engine) must agree with each other
            // — the engine differential restated through the batch.
            assert_eq!(
                results[0], results[1],
                "{name}: {model} legacy/predecoded divergence in one batch"
            );
            assert_eq!(
                results[0], results[2],
                "{name}: {model} legacy/tabled divergence in one batch"
            );
        }
    }
}
