//! Pins `MemoryModel::Perfect` byte-equal to the pre-refactor machine.
//!
//! Before the memory system became pluggable, every load completed in a
//! fixed `cfg.load_latency` and instruction fetch was free.  The
//! `Perfect` model claims to reproduce that machine bit-for-bit.  This
//! suite holds it to the claim against digests captured from the
//! *pre-refactor* binary: for every regression-corpus case, under every
//! scheduling model and every issue engine, the run's cycles, all
//! pre-refactor counters, final registers, final memory and the full
//! recorded event log are hashed and compared against
//! `baselines/perfect_memory_digests.txt`.
//!
//! The digest deliberately covers only state that existed before the
//! refactor (new memory counters are excluded), so it stays comparable
//! across the refactor boundary.  Regenerate with
//! `PSB_WRITE_PERFECT_DIGESTS=1 cargo test -p psb-fuzz --test
//! perfect_pinning -- --nocapture` — but only ever from a machine whose
//! default timing is known-good, because the file *is* the oracle.

use psb_compile::{compile_fresh, CompileRequest, ProfileSource};
use psb_core::{Engine, MachineConfig, ShadowMode, VliwResult};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

const ENGINES: [Engine; 3] = [Engine::Legacy, Engine::Predecoded, Engine::Tabled];

fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Tabled => "tabled",
        Engine::Predecoded => "predecoded",
        Engine::Legacy => "legacy",
    }
}

/// FNV-1a over the canonical serialization below.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes the pre-refactor observable state of a run: cycles, the
/// counters that predate the memory system, registers, memory, events.
fn digest(res: &VliwResult) -> u64 {
    let mut s = String::new();
    let st = &res.stats;
    write!(
        s,
        "cycles={} wi={} oe={} os={} so={} ss={} sb={} rec={} fh={} rt={} c={} q={};",
        res.cycles,
        st.words_issued,
        st.ops_executed,
        st.ops_squashed,
        st.stall_operand,
        st.stall_sb_full,
        st.stall_busy,
        st.recoveries,
        st.faults_handled,
        st.region_transfers,
        st.commits,
        st.squashes
    )
    .unwrap();
    write!(s, "regs={:?};mem={:?};", res.regs, res.memory.cells()).unwrap();
    for e in &res.events {
        write!(s, "{e:?};").unwrap();
    }
    fnv1a(s.as_bytes())
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines/perfect_memory_digests.txt")
}

/// Computes `case model engine -> digest` over the whole corpus.
fn compute_digests() -> BTreeMap<String, u64> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/regressions");
    let cases = psb_fuzz::load_corpus(&dir).expect("corpus loads");
    assert!(!cases.is_empty(), "corpus must not be empty");
    let mut out = BTreeMap::new();
    for (path, case) in &cases {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("corpus file name")
            .to_string();
        let prog = &case.program;
        let scalar = ScalarMachine::new(
            prog,
            ScalarConfig {
                fault_once_addrs: case.fault_once.clone(),
                ..ScalarConfig::default()
            },
        )
        .run()
        .unwrap_or_else(|e| panic!("{name}: scalar run failed: {e}"));
        for model in Model::ALL {
            let sched_cfg = SchedConfig::new(model);
            let single_shadow = sched_cfg.single_shadow;
            let art = compile_fresh(&CompileRequest {
                program: prog,
                profile: ProfileSource::Provided(&scalar.edge_profile),
                sched: sched_cfg,
            })
            .unwrap_or_else(|e| panic!("{name}: {model} failed to compile: {e}"));
            for engine in ENGINES {
                let cfg = MachineConfig {
                    shadow_mode: if single_shadow {
                        ShadowMode::Single
                    } else {
                        ShadowMode::Infinite
                    },
                    fault_once_addrs: case.fault_once.clone(),
                    record_events: true,
                    engine,
                    ..MachineConfig::default()
                };
                let res = art
                    .run(cfg)
                    .unwrap_or_else(|e| panic!("{name}: {model} {engine:?} run failed: {e}"));
                out.insert(
                    format!("{name} {model} {}", engine_name(engine)),
                    digest(&res),
                );
            }
        }
    }
    out
}

/// The default machine (which is `MemoryModel::Perfect`) must reproduce
/// the digests captured from the pre-refactor binary, for every corpus
/// case x scheduling model x issue engine.
#[test]
fn perfect_memory_matches_pre_refactor_digests() {
    let computed = compute_digests();
    if std::env::var_os("PSB_WRITE_PERFECT_DIGESTS").is_some() {
        let mut text = String::new();
        for (k, v) in &computed {
            writeln!(text, "{k} {v:016x}").unwrap();
        }
        std::fs::write(baseline_path(), text).expect("write digest baseline");
        println!("wrote {} digests to {:?}", computed.len(), baseline_path());
        return;
    }
    let text = std::fs::read_to_string(baseline_path()).expect(
        "baselines/perfect_memory_digests.txt missing; regenerate with \
         PSB_WRITE_PERFECT_DIGESTS=1 only from a known-good machine",
    );
    let mut expected = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, hex) = line.rsplit_once(' ').expect("digest line shape");
        expected.insert(
            key.to_string(),
            u64::from_str_radix(hex, 16).expect("digest hex"),
        );
    }
    let mut mismatches = Vec::new();
    for (key, want) in &expected {
        match computed.get(key) {
            Some(got) if got == want => {}
            Some(got) => mismatches.push(format!("{key}: digest {got:016x} != {want:016x}")),
            None => mismatches.push(format!("{key}: case missing from this run")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "Perfect memory diverged from the pre-refactor machine:\n{}",
        mismatches.join("\n")
    );
    // New corpus entries since the capture are allowed (they have no
    // pinned digest yet), but the capture set itself must be covered.
    assert!(
        computed.len() >= expected.len(),
        "corpus shrank below the pinned digest set"
    );
}
