//! Differential proof that the pre-decoded and table-dispatched issue
//! paths are observably identical to the legacy one.
//!
//! The pre-decoded engine replaces the per-cycle `MultiOp` clone and
//! `SlotOp::srcs()` walk with a decoded arena and mask screens; the
//! tabled engine goes further and drives issue entirely from generated
//! function-pointer tables with fused per-slot handlers.  This property
//! holds all three to the strongest available equality: on randomly
//! generated fuzz programs (speculative exceptions, recoveries, region
//! exits included), every engine must produce **byte-identical event
//! logs** and equal [`VliwResult`]s — cycles, every counter, final
//! registers and memory — under every scheduling model.

use proptest::prelude::*;
use psb_compile::{compile_fresh, CompileRequest, CompiledArtifact, ProfileSource};
use psb_core::{Engine, MachineConfig, MemoryModel, ShadowMode, VliwResult};
use psb_fuzz::{gen_case, memory_rotation};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};

/// Runs one compiled artifact under `engine` with event recording on.
fn run_engine(
    art: &CompiledArtifact,
    single_shadow: bool,
    fault_once: &std::collections::BTreeSet<i64>,
    engine: Engine,
    memory: MemoryModel,
) -> VliwResult {
    let cfg = MachineConfig {
        shadow_mode: if single_shadow {
            ShadowMode::Single
        } else {
            ShadowMode::Infinite
        },
        fault_once_addrs: fault_once.clone(),
        record_events: true,
        engine,
        memory,
        ..MachineConfig::default()
    };
    art.run(cfg).expect("engine run succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn engines_produce_identical_logs_and_results(seed in 0u64..2000) {
        let case = gen_case(seed);
        let prog = &case.program;
        let scalar = ScalarMachine::new(prog, ScalarConfig {
            fault_once_addrs: case.fault_once.clone(),
            ..ScalarConfig::default()
        })
        .run()
        .expect("generated case runs on the scalar machine");

        for model in Model::ALL {
            let sched_cfg = SchedConfig::new(model);
            let single_shadow = sched_cfg.single_shadow;
            let art = compile_fresh(&CompileRequest {
                program: prog,
                profile: ProfileSource::Provided(&scalar.edge_profile),
                sched: sched_cfg,
            })
            .expect("generated case compiles");
            // Rotate the memory timing model by seed: the three-way
            // equality must hold under cache misses and fetch stalls,
            // not just the paper's perfect memory.
            let memory = memory_rotation(seed);
            let legacy =
                run_engine(&art, single_shadow, &case.fault_once, Engine::Legacy, memory);
            let decoded =
                run_engine(&art, single_shadow, &case.fault_once, Engine::Predecoded, memory);
            let tabled =
                run_engine(&art, single_shadow, &case.fault_once, Engine::Tabled, memory);
            // VliwResult equality covers cycles, all RunStats counters,
            // final registers, final memory AND the recorded event log.
            prop_assert_eq!(
                &legacy, &decoded,
                "legacy/predecoded divergence on seed {} model {} memory {}",
                seed, model, memory
            );
            prop_assert_eq!(
                &legacy, &tabled,
                "legacy/tabled divergence on seed {} model {} memory {}",
                seed, model, memory
            );
        }
    }
}

/// The curated regression corpus (hand-written + shrunk fuzz repros,
/// heavy on recovery interleavings) must also be engine-independent.
#[test]
fn corpus_cases_are_engine_independent() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/regressions");
    let cases = psb_fuzz::load_corpus(&dir).expect("corpus loads");
    assert!(!cases.is_empty(), "corpus must not be empty");
    for (path, case) in &cases {
        let name = path.display();
        let prog = &case.program;
        let scalar = ScalarMachine::new(
            prog,
            ScalarConfig {
                fault_once_addrs: case.fault_once.clone(),
                ..ScalarConfig::default()
            },
        )
        .run()
        .unwrap_or_else(|e| panic!("{name}: scalar run failed: {e}"));
        for model in Model::ALL {
            let sched_cfg = SchedConfig::new(model);
            let single_shadow = sched_cfg.single_shadow;
            let art = compile_fresh(&CompileRequest {
                program: prog,
                profile: ProfileSource::Provided(&scalar.edge_profile),
                sched: sched_cfg,
            })
            .unwrap_or_else(|e| panic!("{name}: {model} failed to compile: {e}"));
            // Every memory model in the rotation: the corpus is the
            // curated hard-case set, so engine equality must hold on it
            // under realistic memory too.
            for k in 0..3 {
                let memory = memory_rotation(k);
                let legacy = run_engine(
                    &art,
                    single_shadow,
                    &case.fault_once,
                    Engine::Legacy,
                    memory,
                );
                let decoded = run_engine(
                    &art,
                    single_shadow,
                    &case.fault_once,
                    Engine::Predecoded,
                    memory,
                );
                let tabled = run_engine(
                    &art,
                    single_shadow,
                    &case.fault_once,
                    Engine::Tabled,
                    memory,
                );
                assert_eq!(
                    legacy, decoded,
                    "{name}: legacy/predecoded divergence under {model} memory {memory}"
                );
                assert_eq!(
                    legacy, tabled,
                    "{name}: legacy/tabled divergence under {model} memory {memory}"
                );
            }
        }
    }
}
