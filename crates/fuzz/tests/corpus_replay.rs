//! Replays every checked-in regression-corpus program through the
//! differential driver on every scheduling model.
//!
//! The corpus holds two kinds of entries: the repo's benchmark kernels
//! (broad coverage of real control flow) and minimized recovery-stress
//! repros harvested from `repro fuzz --inject-recovery-bug` (each forces
//! at least one recovery episode on the speculating models).  A failure
//! here means a previously-fixed bug has regressed.

use psb_core::Engine;
use psb_fuzz::{load_corpus, run_case, DiffConfig};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus/regressions")
}

#[test]
fn corpus_replays_clean_on_every_model() {
    let corpus = load_corpus(&corpus_dir()).expect("regression corpus present");
    assert!(
        corpus.len() >= 6,
        "corpus should hold the four benchmarks plus the recovery repros, found {}",
        corpus.len()
    );
    let cfg = DiffConfig::default();
    let mut recoveries = 0;
    for (path, case) in &corpus {
        match run_case(case, &cfg) {
            Ok(stats) => recoveries += stats.recoveries,
            Err(f) => panic!("{} failed: {f}", path.display()),
        }
    }
    assert!(
        recoveries > 0,
        "the recovery-stress repros must exercise at least one recovery"
    );
}

#[test]
fn corpus_replays_clean_on_the_tabled_engine() {
    // Pin the tabled engine explicitly (independent of the workspace
    // default) so the generated-dispatch issue path always replays the
    // full regression corpus, recoveries included.
    let corpus = load_corpus(&corpus_dir()).expect("regression corpus present");
    let cfg = DiffConfig {
        engine: Engine::Tabled,
        ..DiffConfig::default()
    };
    let mut recoveries = 0;
    for (path, case) in &corpus {
        match run_case(case, &cfg) {
            Ok(stats) => recoveries += stats.recoveries,
            Err(f) => panic!("{} failed on Engine::Tabled: {f}", path.display()),
        }
    }
    assert!(
        recoveries > 0,
        "the tabled engine must replay the recovery-stress repros"
    );
}

#[test]
fn recovery_repros_force_recoveries() {
    // The hand-minimized entries specifically must each trigger recovery
    // on at least one model — otherwise they no longer stress the
    // recovery-exit path they were minimized to cover.
    let corpus = load_corpus(&corpus_dir()).expect("regression corpus present");
    let cfg = DiffConfig::default();
    for (path, case) in &corpus {
        if !case.fault_once.is_empty() {
            let stats =
                run_case(case, &cfg).unwrap_or_else(|f| panic!("{} failed: {f}", path.display()));
            assert!(
                stats.recoveries > 0,
                "{} no longer triggers a recovery",
                path.display()
            );
        }
    }
}
