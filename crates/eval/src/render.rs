//! Plain-text renderers producing tables shaped like the paper's.

use crate::experiments::{
    AblationResult, CodeSizeRow, Fig8Result, FigureResult, InteractionResult, MixRow,
    SensitivityRow, Table2Row, Table3Row,
};
use crate::runner::RunMetrics;
use psb_core::Event;
use std::fmt::Write;

/// Renders the simulator-throughput metrics.
pub fn render_metrics(rows: &[RunMetrics]) -> String {
    let mut s = String::new();
    writeln!(s, "Simulator throughput (per workload x model run)").unwrap();
    writeln!(
        s,
        "{:<10} {:<12} {:>10} {:>9} {:>9} {:>6} {:>9} {:>12}",
        "workload", "model", "cycles", "commits", "squashes", "recov", "wall(s)", "cyc/s"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:<10} {:<12} {:>10} {:>9} {:>9} {:>6} {:>9.4} {:>12.0}",
            r.workload,
            r.model,
            r.cycles,
            r.commits,
            r.squashes,
            r.recoveries,
            r.host.wall_seconds,
            r.cycles_per_second()
        )
        .unwrap();
    }
    s
}

/// Renders a machine event log as the paper's Table 1: one row per cycle
/// with sequential-state writes, speculative-state writes (with their
/// predicates), commits, squashes, and CCR transitions.
pub fn render_table1(events: &[Event]) -> String {
    let last = events.iter().map(Event::cycle).max().unwrap_or(0);
    let mut s = String::new();
    writeln!(s, "Machine state transition (Table 1 format)").unwrap();
    writeln!(
        s,
        "{:<6} {:<12} {:<24} {:<14} {:<12} CCR",
        "cycle", "seq write", "spec write (pred)", "commit", "squash"
    )
    .unwrap();
    for cycle in 1..=last {
        let mut seqw = Vec::new();
        let mut specw = Vec::new();
        let mut commits = Vec::new();
        let mut squashes = Vec::new();
        let mut conds = Vec::new();
        for e in events.iter().filter(|e| e.cycle() == cycle) {
            match e {
                Event::SeqWrite { reg, .. } => seqw.push(reg.to_string()),
                Event::SeqStore { loc, .. } => seqw.push(loc.to_string()),
                Event::SpecWrite { loc, pred, .. } => specw.push(format!("{pred} {loc}")),
                Event::Commit { loc, .. } => commits.push(loc.to_string()),
                Event::Squash { loc, .. } => squashes.push(loc.to_string()),
                Event::CondSet { c, value, .. } => conds.push(format!("{c}={value}")),
                _ => {}
            }
        }
        writeln!(
            s,
            "{:<6} {:<12} {:<24} {:<14} {:<12} {}",
            cycle,
            seqw.join(","),
            specw.join(", "),
            commits.join(","),
            squashes.join(","),
            conds.join(",")
        )
        .unwrap();
    }
    s
}

/// Renders the Table 2 reproduction.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    writeln!(s, "Table 2: benchmark programs (scalar baseline)").unwrap();
    writeln!(
        s,
        "{:<10} {:>8} {:>12}  remarks",
        "program", "instrs", "cycles"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:<10} {:>8} {:>12}  {}",
            r.name, r.static_len, r.scalar_cycles, r.description
        )
        .unwrap();
    }
    s
}

/// Renders the Table 3 reproduction.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    writeln!(s, "Table 3: prediction accuracy of successive branches").unwrap();
    write!(s, "{:<10}", "#branches").unwrap();
    for n in 1..=8 {
        write!(s, " {n:>5}").unwrap();
    }
    writeln!(s).unwrap();
    for r in rows {
        write!(s, "{:<10}", r.name).unwrap();
        for a in &r.accuracy {
            write!(s, " {a:>5.2}").unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

/// Renders a Figure 6/7-style per-benchmark speedup table.
pub fn render_figure(title: &str, fig: &FigureResult) -> String {
    let mut s = String::new();
    writeln!(s, "{title}: speedup over the scalar machine").unwrap();
    write!(s, "{:<10}", "program").unwrap();
    for m in &fig.models {
        write!(s, " {m:>14}").unwrap();
    }
    writeln!(s).unwrap();
    for b in &fig.benches {
        write!(s, "{:<10}", b.name).unwrap();
        for m in &b.models {
            write!(s, " {:>14.2}", m.speedup).unwrap();
        }
        writeln!(s).unwrap();
    }
    write!(s, "{:<10}", "geomean").unwrap();
    for g in &fig.geomeans {
        write!(s, " {g:>14.2}").unwrap();
    }
    writeln!(s).unwrap();
    s
}

/// Renders the Figure 8 sweep.
pub fn render_fig8(fig: &Fig8Result) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Figure 8: full-issue machines, region predicating, geomean speedup"
    )
    .unwrap();
    writeln!(s, "{:<8} {:>8} {:>10}", "width", "depth", "geomean").unwrap();
    for c in &fig.cells {
        writeln!(s, "{:<8} {:>8} {:>10.2}", c.width, c.depth, c.geomean).unwrap();
    }
    s
}

/// Renders an A/B ablation.
pub fn render_ablation(ab: &AblationResult) -> String {
    let mut s = String::new();
    writeln!(s, "Ablation: {}", ab.label).unwrap();
    writeln!(
        s,
        "{:<10} {:>10} {:>10} {:>8}",
        "program", "base", "variant", "delta"
    )
    .unwrap();
    for i in 0..ab.benches.len() {
        let delta = (ab.variant[i] / ab.base[i] - 1.0) * 100.0;
        writeln!(
            s,
            "{:<10} {:>10.3} {:>10.3} {:>7.2}%",
            ab.benches[i], ab.base[i], ab.variant[i], delta
        )
        .unwrap();
    }
    let gd = (ab.geomeans.1 / ab.geomeans.0 - 1.0) * 100.0;
    writeln!(
        s,
        "{:<10} {:>10.3} {:>10.3} {:>7.2}%",
        "geomean", ab.geomeans.0, ab.geomeans.1, gd
    )
    .unwrap();
    s
}

/// Renders the static code-size report.
pub fn render_code_size(rows: &[CodeSizeRow], models: &[&str]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Static code size (VLIW ops; expansion over the scalar kernel)"
    )
    .unwrap();
    write!(s, "{:<10} {:>7}", "program", "scalar").unwrap();
    for m in models {
        write!(s, " {m:>14}").unwrap();
    }
    writeln!(s).unwrap();
    for r in rows {
        write!(s, "{:<10} {:>7}", r.name, r.scalar_ops).unwrap();
        for (ops, exp) in r.per_model.iter().zip(&r.expansion) {
            write!(s, " {:>8} ({:.1}x)", ops, exp).unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

/// Renders the timing-sensitivity sweep.
pub fn render_sensitivity(rows: &[SensitivityRow]) -> String {
    let mut s = String::new();
    writeln!(s, "Timing-model sensitivity (geomean speedups)").unwrap();
    writeln!(
        s,
        "{:<30} {:>12} {:>12}",
        "setting", "trace-pred", "region-pred"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:<30} {:>12.2} {:>12.2}",
            r.setting, r.trace_pred, r.region_pred
        )
        .unwrap();
    }
    s
}

/// Renders the dynamic instruction-mix report.
pub fn render_mix(rows: &[MixRow]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Dynamic instruction mix (fractions of executed instructions)"
    )
    .unwrap();
    writeln!(
        s,
        "{:<10} {:>8} {:>8} {:>10} {:>8}",
        "program", "loads", "stores", "branches", "jumps"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:<10} {:>7.1}% {:>7.1}% {:>9.1}% {:>7.1}%",
            r.name,
            r.loads * 100.0,
            r.stores * 100.0,
            r.branches * 100.0,
            r.jumps * 100.0
        )
        .unwrap();
    }
    s
}

/// Renders the scope × hardware interaction quadrant.
pub fn render_interaction(r: &InteractionResult) -> String {
    let mut s = String::new();
    writeln!(s, "Scope x hardware interaction (geomean speedups)").unwrap();
    writeln!(s, "{:<18} {:>12} {:>12}", "", "squashing", "buffering").unwrap();
    writeln!(
        s,
        "{:<18} {:>12.2} {:>12.2}",
        "trace scope", r.trace_squash, r.trace_buffered
    )
    .unwrap();
    writeln!(
        s,
        "{:<18} {:>12.2} {:>12.2}",
        "region scope", r.region_squash, r.region_buffered
    )
    .unwrap();
    let (s_sq, s_buf) = r.scope_gain();
    writeln!(
        s,
        "region over trace: {:+.1}% with squashing, {:+.1}% with buffering",
        (s_sq - 1.0) * 100.0,
        (s_buf - 1.0) * 100.0
    )
    .unwrap();
    let (h_tr, h_re) = r.hardware_gain();
    writeln!(
        s,
        "buffering over squashing: {:+.1}% in traces, {:+.1}% in regions",
        (h_tr - 1.0) * 100.0,
        (h_re - 1.0) * 100.0
    )
    .unwrap();
    s
}
