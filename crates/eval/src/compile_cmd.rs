//! `repro compile` — runs the compilation pipeline (profile → schedule →
//! decode) by itself, reporting per-stage timings, artifact sizes, and
//! the content hash of each (workload × model) point plus the shared
//! cache's counters.
//!
//! This is the observability face of `psb-compile`: the sweep compiles
//! every point through one [`ArtifactCache`], so the reported `misses`
//! equals the number of distinct artifacts and is identical for every
//! `--jobs` value (the cache is single-flight).

use crate::json::{Json, ToJson};
use crate::runner::{parallel_map_t, EvalParams, BENCHMARKS};
use crate::telemetry_export::cache_stats_json;
use psb_compile::{
    compile_stored, ArtifactCache, CacheStats, CompileRequest, DiskStore, ProfileSource, Stage,
    StoreStats,
};
use psb_scalar::ScalarConfig;
use psb_sched::Model;
use psb_telemetry::{NullTelemetry, Telemetry};

/// Host-dependent per-stage timings of one compile (zeroed by
/// `--deterministic`).  Cache-served points report the original
/// compile's timings — the artifact is shared, and so are its stats.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CompileHost {
    /// Profile-stage seconds (the scalar training run).
    pub profile_seconds: f64,
    /// Schedule-stage seconds.
    pub schedule_seconds: f64,
    /// Decode-stage seconds (lowering into the pre-decoded arena).
    pub decode_seconds: f64,
}

impl ToJson for CompileHost {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("profile_seconds", self.profile_seconds.to_json()),
            ("schedule_seconds", self.schedule_seconds.to_json()),
            ("decode_seconds", self.decode_seconds.to_json()),
        ])
    }
}

/// One compiled (workload × model) point.
#[derive(Clone, PartialEq, Debug)]
pub struct CompileRow {
    /// Workload name.
    pub workload: String,
    /// Scheduling model name.
    pub model: String,
    /// The artifact's content hash, as 16 hex digits — deterministic.
    pub content_hash: String,
    /// Where the artifact came from: `"memory"`, `"disk"`, or
    /// `"compiled"` (always `"compiled"` or `"memory"` without `--store`).
    pub source: String,
    /// Instruction words in the scheduled program.
    pub words: usize,
    /// Decoded slots in the pre-decoded arena.
    pub slots: usize,
    /// Regions (scope entries) in the schedule.
    pub regions: usize,
    /// Non-nop operations in the schedule.
    pub ops: usize,
    /// Host-dependent stage timings.
    pub host: CompileHost,
}

impl ToJson for CompileRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", self.workload.to_json()),
            ("model", self.model.to_json()),
            ("content_hash", self.content_hash.to_json()),
            ("source", self.source.to_json()),
            ("words", self.words.to_json()),
            ("slots", self.slots.to_json()),
            ("regions", self.regions.to_json()),
            ("ops", self.ops.to_json()),
            ("host", self.host.to_json()),
        ])
    }
}

/// The whole `repro compile` document: one row per point plus the shared
/// cache's counters after the sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct CompileSweep {
    /// One row per (workload × model) point, in sweep order.
    pub rows: Vec<CompileRow>,
    /// Cache counters after the sweep (`misses` = distinct artifacts).
    pub cache: CacheStats,
    /// On-disk store counters, when the sweep ran with `--store`.
    pub store: Option<StoreStats>,
}

impl CompileSweep {
    /// Zeroes the host-dependent timings (the `--deterministic` contract;
    /// the cache counters are already deterministic at any `--jobs`).
    pub fn zero_host(&mut self) {
        for r in &mut self.rows {
            r.host = CompileHost::default();
        }
    }
}

impl ToJson for CompileSweep {
    fn to_json(&self) -> Json {
        let store = self.store.as_ref().map(|st| {
            Json::obj(vec![
                ("hits", st.hits.to_json()),
                ("misses", st.misses.to_json()),
                ("errors", st.errors.to_json()),
                ("writes", st.writes.to_json()),
                ("evictions", st.evictions.to_json()),
            ])
        });
        Json::obj(vec![
            ("rows", self.rows.to_json()),
            ("cache", cache_stats_json(&self.cache)),
            ("store", store.to_json()),
        ])
    }
}

/// Compiles every (workload × model) point through one shared cache.
/// Empty `workloads` means all six benchmarks; empty `models` means all
/// seven models.
///
/// # Panics
///
/// Panics on an unknown workload name or a pipeline failure — the sweep
/// only covers the checked-in benchmark set, which must compile.
pub fn compile_sweep(workloads: &[String], models: &[Model], params: &EvalParams) -> CompileSweep {
    compile_sweep_t(workloads, models, params, &NullTelemetry)
}

/// [`compile_sweep`] with instrumentation: per-point task spans, the
/// compile stage spans/histograms, and the cache contention histograms
/// all flow into `tel`.
pub fn compile_sweep_t<T: Telemetry>(
    workloads: &[String],
    models: &[Model],
    params: &EvalParams,
    tel: &T,
) -> CompileSweep {
    compile_sweep_stored(workloads, models, params, None, tel)
}

/// [`compile_sweep_t`] backed by a persistent on-disk artifact store:
/// each point tries memory, then disk, then compiles (persisting the
/// result), and its row records which layer answered.  This is the
/// `repro compile --store DIR` path the cross-process persistence test
/// drives — a second process over the same directory must fill from
/// disk instead of recompiling.
pub fn compile_sweep_stored<T: Telemetry>(
    workloads: &[String],
    models: &[Model],
    params: &EvalParams,
    store: Option<&DiskStore>,
    tel: &T,
) -> CompileSweep {
    let workloads: Vec<String> = if workloads.is_empty() {
        BENCHMARKS.iter().map(|n| n.to_string()).collect()
    } else {
        workloads.to_vec()
    };
    let models: Vec<Model> = if models.is_empty() {
        Model::ALL.to_vec()
    } else {
        models.to_vec()
    };
    let points: Vec<(String, Model)> = workloads
        .iter()
        .flat_map(|n| models.iter().map(move |&m| (n.clone(), m)))
        .collect();
    let cache = ArtifactCache::new();
    let rows = parallel_map_t(
        &points,
        params.jobs,
        tel,
        |_, (name, model)| format!("{name}/{}", model.name()),
        |(name, model)| {
            let train = psb_workloads::by_name(name, params.train_seed, params.size)
                .unwrap_or_else(|| panic!("unknown workload {name}"));
            let eval = psb_workloads::by_name(name, params.eval_seed, params.size)
                .unwrap_or_else(|| panic!("unknown workload {name}"));
            let req = CompileRequest {
                program: &eval.program,
                profile: ProfileSource::Train {
                    program: &train.program,
                    config: ScalarConfig::default(),
                },
                sched: params.sched_config(*model),
            };
            let (art, source) = compile_stored(&req, &cache, store, tel)
                .unwrap_or_else(|e| panic!("{name}/{model}: compile failed: {e}"));
            CompileRow {
                workload: name.clone(),
                model: model.name().to_string(),
                content_hash: art.hash_hex(),
                source: source.name().to_string(),
                words: art.stats.words,
                slots: art.stats.slots,
                regions: art.sched_stats.regions,
                ops: art.sched_stats.ops,
                host: CompileHost {
                    profile_seconds: art.stats.profile_seconds,
                    schedule_seconds: art.stats.schedule_seconds,
                    decode_seconds: art.stats.decode_seconds,
                },
            }
        },
    );
    CompileSweep {
        rows,
        cache: cache.stats(),
        store: store.map(|s| s.stats()),
    }
}

/// Renders a human-readable table (stderr companion to the JSON).
pub fn render_compile(sweep: &CompileSweep) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(
        s,
        "{:<10} {:<12} {:<18} {:>6} {:>7} {:>7} {:>6}  stage seconds ({})",
        "workload",
        "model",
        "artifact",
        "words",
        "slots",
        "ops",
        "rgns",
        Stage::ALL
            .iter()
            .map(|st| st.name())
            .collect::<Vec<_>>()
            .join("/")
    )
    .unwrap();
    for r in &sweep.rows {
        writeln!(
            s,
            "{:<10} {:<12} {:<18} {:>6} {:>7} {:>7} {:>6}  {:.6}/{:.6}/{:.6}",
            r.workload,
            r.model,
            r.content_hash,
            r.words,
            r.slots,
            r.ops,
            r.regions,
            r.host.profile_seconds,
            r.host.schedule_seconds,
            r.host.decode_seconds
        )
        .unwrap();
    }
    writeln!(
        s,
        "cache: {} miss(es) ({} distinct artifact(s)), {} hit(s), {} eviction(s), \
         {} training profile run(s)",
        sweep.cache.misses,
        sweep.cache.entries,
        sweep.cache.hits,
        sweep.cache.evictions,
        sweep.cache.profile_misses
    )
    .unwrap();
    write!(s, "cache shards (hits/misses/entries):").unwrap();
    for (i, sh) in sweep.cache.shards.iter().enumerate() {
        write!(s, " {i}:{}/{}/{}", sh.hits, sh.misses, sh.entries).unwrap();
    }
    writeln!(s).unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_compiles_each_point_once_and_shares_profiles() {
        let params = EvalParams {
            size: 96,
            ..EvalParams::default()
        };
        let workloads = vec!["grep".to_string(), "li".to_string()];
        let sweep = compile_sweep(&workloads, &[], &params);
        assert_eq!(sweep.rows.len(), 2 * Model::ALL.len());
        assert_eq!(sweep.cache.misses, 2 * Model::ALL.len() as u64);
        assert_eq!(sweep.cache.hits, 0);
        // One scalar training run per workload, shared by all 7 models.
        assert_eq!(sweep.cache.profile_misses, 2);
        assert_eq!(sweep.cache.profile_hits, 2 * (Model::ALL.len() as u64 - 1));
        // The shard breakdown partitions the totals.
        let shard_misses: u64 = sweep.cache.shards.iter().map(|s| s.misses).sum();
        let shard_entries: u64 = sweep.cache.shards.iter().map(|s| s.entries).sum();
        assert_eq!(shard_misses, sweep.cache.misses);
        assert_eq!(shard_entries, sweep.cache.entries);
        // Hashes are 16 hex digits and distinct across models of one
        // workload (the model is part of the schedule, hence the hash).
        let grep: Vec<&str> = sweep
            .rows
            .iter()
            .filter(|r| r.workload == "grep")
            .map(|r| r.content_hash.as_str())
            .collect();
        assert_eq!(grep.len(), Model::ALL.len());
        for h in &grep {
            assert_eq!(h.len(), 16, "{h}");
        }
        let mut dedup = grep.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), grep.len(), "model hashes must differ");
        // Deterministic at any job count.
        let mut serial = sweep.clone();
        serial.zero_host();
        let mut par = compile_sweep(&workloads, &[], &EvalParams { jobs: 4, ..params });
        par.zero_host();
        assert_eq!(serial, par);
    }
}
