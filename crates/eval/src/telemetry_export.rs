//! Exporters for [`psb_telemetry`] reports: the merged host+guest
//! Chrome-trace document behind `--telemetry`, the percentile report
//! JSON, and the text summary.
//!
//! The merged trace puts the *host* pipeline (compile stages, cache
//! waits, worker-pool tasks) and the *guest* machine (region occupancy,
//! commits, squashes, recoveries) on one Perfetto timeline: host spans
//! occupy `pid 0` with one row per recording thread, and each traced
//! guest run gets its own process (`pid 1..`), exactly as `repro trace`
//! lays them out.  Host time is wall microseconds since the recorder's
//! epoch; guest time is simulated cycles — the units differ, which is
//! why the guests live in separate process groups rather than on the
//! host rows.

use crate::json::{Json, ToJson};
use crate::trace::{metadata, push_run_events, span, RunTrace};
use psb_compile::CacheStats;
use psb_telemetry::{ns_to_rounded_s, HistogramSummary, Telemetry, TelemetryReport};
use std::fmt::Write as _;

/// Version stamped into the `--telemetry` report JSON; bump on any
/// schema change.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

/// Per-guest-run event cap in the merged trace.  A full bench sweep
/// traces dozens of runs; capping each keeps the document loadable in
/// Perfetto.  Truncated runs end with an explicit `truncated` instant.
const GUEST_EVENT_CAP: usize = 20_000;

/// Builds the merged host+guest Chrome trace-event document.
///
/// Host spans (from `report`) land on `pid 0` at `ts = start_ns / 1000`
/// (the trace-event unit is microseconds); guest runs follow on
/// `pid 1..` in `guests` order, capped per run.
pub fn merged_chrome_trace(report: &TelemetryReport, guests: &[RunTrace]) -> Json {
    let mut out: Vec<Json> = Vec::new();
    out.push(metadata("process_name", 0, None, "host"));
    let mut tids: Vec<u64> = report.spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for &tid in &tids {
        out.push(metadata(
            "thread_name",
            0,
            Some(tid as i64),
            &format!("host thread {tid}"),
        ));
    }
    for s in &report.spans {
        out.push(span(
            s.name.clone(),
            s.cat,
            0,
            s.tid as i64,
            s.start_ns / 1000,
            s.dur_ns / 1000,
        ));
    }
    for (i, t) in guests.iter().enumerate() {
        push_run_events(&mut out, t, i + 1, GUEST_EVENT_CAP);
    }
    Json::obj(vec![
        ("traceEvents", Json::Array(out)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

fn summary_json(h: &HistogramSummary) -> Json {
    Json::obj(vec![
        ("count", h.count.to_json()),
        ("sum", h.sum.to_json()),
        ("min", h.min.to_json()),
        ("max", h.max.to_json()),
        ("mean", h.mean.to_json()),
        ("p50", h.p50.to_json()),
        ("p90", h.p90.to_json()),
        ("p99", h.p99.to_json()),
        ("buckets", h.buckets.to_json()),
    ])
}

/// Per-category span rollup: `(cat, spans, total_ns)`, category-sorted
/// so the order is independent of the report's span sort.
fn span_rollup(report: &TelemetryReport) -> Vec<(&'static str, u64, u64)> {
    let mut cats: Vec<(&'static str, u64, u64)> = Vec::new();
    for s in &report.spans {
        match cats.iter_mut().find(|c| c.0 == s.cat) {
            Some(c) => {
                c.1 += 1;
                c.2 += s.dur_ns;
            }
            None => cats.push((s.cat, 1, s.dur_ns)),
        }
    }
    cats.sort_unstable_by_key(|c| c.0);
    cats
}

/// The `--telemetry` report document: per-category span totals plus
/// every counter, gauge, and histogram summary.  In deterministic mode
/// every wall-derived number is 0 and host-only records are absent, so
/// the document is byte-identical at any `--jobs`.
pub fn telemetry_report_json(report: &TelemetryReport) -> Json {
    let spans: Vec<Json> = span_rollup(report)
        .into_iter()
        .map(|(cat, n, total_ns)| {
            Json::obj(vec![
                ("cat", cat.to_json()),
                ("spans", n.to_json()),
                ("total_seconds", ns_to_rounded_s(total_ns).to_json()),
            ])
        })
        .collect();
    let counters: Vec<(String, Json)> = report
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), v.to_json()))
        .collect();
    let gauges: Vec<(String, Json)> = report
        .gauges
        .iter()
        .map(|(k, v)| (k.clone(), v.to_json()))
        .collect();
    let histograms: Vec<(String, Json)> = report
        .histograms
        .iter()
        .map(|(k, h)| (k.clone(), summary_json(h)))
        .collect();
    Json::obj(vec![
        ("schema_version", TELEMETRY_SCHEMA_VERSION.to_json()),
        ("deterministic", report.deterministic.to_json()),
        ("spans", Json::Array(spans)),
        ("counters", Json::Object(counters)),
        ("gauges", Json::Object(gauges)),
        ("histograms", Json::Object(histograms)),
    ])
}

/// Renders the report as text (stderr companion to the JSON files).
pub fn render_telemetry(report: &TelemetryReport) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "telemetry report{}",
        if report.deterministic {
            " (deterministic: wall values zeroed, host-only records dropped)"
        } else {
            ""
        }
    )
    .unwrap();
    let rollup = span_rollup(report);
    if !rollup.is_empty() {
        writeln!(s, "  spans:").unwrap();
        for (cat, n, total_ns) in rollup {
            writeln!(
                s,
                "    {cat:<10} {n:>6} span(s)  total {:.6}s",
                ns_to_rounded_s(total_ns)
            )
            .unwrap();
        }
    }
    if !report.counters.is_empty() {
        writeln!(s, "  counters:").unwrap();
        for (k, v) in &report.counters {
            writeln!(s, "    {k} = {v}").unwrap();
        }
    }
    if !report.gauges.is_empty() {
        writeln!(s, "  gauges:").unwrap();
        for (k, v) in &report.gauges {
            writeln!(s, "    {k} = {v}").unwrap();
        }
    }
    if !report.histograms.is_empty() {
        writeln!(s, "  histograms (ns):").unwrap();
        for (k, h) in &report.histograms {
            writeln!(
                s,
                "    {k:<44} n={:<6} mean={:<12.0} p50<={:<10} p90<={:<10} p99<={:<10} max={}",
                h.count, h.mean, h.p50, h.p90, h.p99, h.max
            )
            .unwrap();
        }
    }
    s
}

/// Pushes a [`CacheStats`] snapshot into the telemetry counter bank
/// (totals plus the per-shard breakdown).  Cache counters are
/// jobs-deterministic — the caches are single-flight and key→shard is a
/// stable function — so these are plain counters, kept in
/// `--deterministic` reports.
pub fn record_cache_stats<T: Telemetry>(tel: &T, stats: &CacheStats) {
    if !tel.enabled() {
        return;
    }
    tel.counter("cache.artifact.hits", stats.hits);
    tel.counter("cache.artifact.misses", stats.misses);
    tel.counter("cache.artifact.evictions", stats.evictions);
    tel.counter("cache.artifact.entries", stats.entries);
    tel.counter("cache.profile.hits", stats.profile_hits);
    tel.counter("cache.profile.misses", stats.profile_misses);
    for (i, sh) in stats.shards.iter().enumerate() {
        tel.counter(&format!("cache.artifact.shard{i}.hits"), sh.hits);
        tel.counter(&format!("cache.artifact.shard{i}.misses"), sh.misses);
        tel.counter(&format!("cache.artifact.shard{i}.evictions"), sh.evictions);
        tel.counter(&format!("cache.artifact.shard{i}.entries"), sh.entries);
    }
}

/// The `cache` sub-object shared by `repro compile` and the
/// `--cache-check` report: totals plus the per-shard breakdown.
pub fn cache_stats_json(stats: &CacheStats) -> Json {
    let shards: Vec<Json> = stats
        .shards
        .iter()
        .map(|sh| {
            Json::obj(vec![
                ("hits", sh.hits.to_json()),
                ("misses", sh.misses.to_json()),
                ("evictions", sh.evictions.to_json()),
                ("entries", sh.entries.to_json()),
            ])
        })
        .collect();
    Json::obj(vec![
        ("hits", stats.hits.to_json()),
        ("misses", stats.misses.to_json()),
        ("evictions", stats.evictions.to_json()),
        ("entries", stats.entries.to_json()),
        ("profile_hits", stats.profile_hits.to_json()),
        ("profile_misses", stats.profile_misses.to_json()),
        ("shards", Json::Array(shards)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_core::Event;
    use psb_telemetry::Recorder;

    fn sample_report(deterministic: bool) -> TelemetryReport {
        let rec = Recorder::new(deterministic);
        {
            let _s = rec.span("compile", || "schedule:0000000000000001".to_string());
        }
        rec.counter("pmap.items", 3);
        rec.observe("pmap.task_ns", 1500);
        rec.gauge_host("jobs", 4);
        rec.report()
    }

    fn tiny_guest() -> RunTrace {
        RunTrace {
            workload: "grep".to_string(),
            model: "region-pred".to_string(),
            cycles: 10,
            events: vec![Event::Commit {
                cycle: 4,
                loc: psb_core::StateLoc::Sb(1),
            }],
        }
    }

    #[test]
    fn merged_trace_places_host_and_guests_on_distinct_pids() {
        let doc = merged_chrome_trace(&sample_report(false), &[tiny_guest()]);
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let pid_of = |e: &Json| e.get("pid").and_then(Json::as_i64).unwrap();
        assert!(events.iter().any(|e| pid_of(e) == 0
            && e.get("ph").and_then(Json::as_str) == Some("X")
            && e.get("cat").and_then(Json::as_str) == Some("compile")));
        assert!(events
            .iter()
            .any(|e| pid_of(e) == 1 && e.get("cat").and_then(Json::as_str) == Some("commit")));
        // Host process metadata names pid 0 "host".
        assert!(events.iter().any(|e| pid_of(e) == 0
            && e.get("ph").and_then(Json::as_str) == Some("M")
            && e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                == Some("host")));
    }

    #[test]
    fn report_json_carries_schema_and_all_banks() {
        let doc = telemetry_report_json(&sample_report(false));
        assert_eq!(doc.get("schema_version").and_then(Json::as_i64), Some(1));
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("pmap.items"))
                .and_then(Json::as_i64),
            Some(3)
        );
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("jobs"))
                .and_then(Json::as_i64),
            Some(4)
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("pmap.task_ns"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_i64), Some(1));
        assert_eq!(hist.get("max").and_then(Json::as_i64), Some(1500));
        let text = render_telemetry(&sample_report(true));
        assert!(text.contains("deterministic"));
        assert!(text.contains("pmap.items = 3"));
    }

    #[test]
    fn cache_stats_reach_counters_with_shard_breakdown() {
        let mut stats = CacheStats {
            hits: 5,
            misses: 2,
            ..CacheStats::default()
        };
        stats.shards[3].hits = 5;
        stats.shards[3].misses = 2;
        let rec = Recorder::new(true);
        record_cache_stats(&rec, &stats);
        let rep = rec.report();
        let get = |name: &str| {
            rep.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("cache.artifact.hits"), Some(5));
        assert_eq!(get("cache.artifact.shard3.misses"), Some(2));
        assert_eq!(get("cache.artifact.shard0.hits"), Some(0));
        let doc = cache_stats_json(&stats);
        let shards = doc.get("shards").and_then(Json::as_array).unwrap();
        assert_eq!(shards.len(), psb_compile::SHARD_COUNT);
        assert_eq!(shards[3].get("hits").and_then(Json::as_i64), Some(5));
    }
}
