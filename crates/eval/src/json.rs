//! Minimal JSON document model and pretty printer.
//!
//! The build container has no crates.io access, so the experiment
//! harness serializes its result structs through this module instead of
//! `serde_json`.  The printer is deterministic: field order is the
//! declaration order of each `ToJson` implementation, floats print via
//! Rust's shortest round-trip formatting, and the layout (2-space
//! indent) matches `serde_json::to_string_pretty`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every integer field in the result structs).
    Int(i64),
    /// A float, printed with shortest round-trip formatting.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered fields.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(name, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders with 2-space indentation (the `serde_json` pretty layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral values, so
                    // the output stays typed as a JSON number with a
                    // fractional part — and round-trips exactly.
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no NaN/Infinity; serde_json emits null too.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the [`Json`] document model.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Pretty-prints any [`ToJson`] value (the `serde_json::to_string_pretty`
/// replacement).
pub fn to_json_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

impl_tojson_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_layout_matches_serde_style() {
        let v = Json::obj(vec![
            ("name", Json::Str("grep".into())),
            ("cycles", Json::Int(42)),
            ("speedup", Json::Float(2.0)),
            ("tags", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Array(vec![])),
        ]);
        let expect = "{\n  \"name\": \"grep\",\n  \"cycles\": 42,\n  \"speedup\": 2.0,\n  \"tags\": [\n    true,\n    null\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.pretty(), expect);
    }

    #[test]
    fn floats_round_trip_and_stay_numbers() {
        assert_eq!(Json::Float(4.0).pretty(), "4.0");
        assert_eq!(
            Json::Float(0.30000000000000004).pretty(),
            "0.30000000000000004"
        );
        assert_eq!(Json::Float(f64::NAN).pretty(), "null");
    }

    #[test]
    fn strings_escape_controls() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).pretty(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn deterministic_output() {
        let v = [(1u64, 2.5f64), (3, 4.5)];
        let j: Vec<Json> = v.iter().map(|t| t.to_json()).collect();
        assert_eq!(Json::Array(j.clone()).pretty(), Json::Array(j).pretty());
    }
}
