//! Observability exporters: Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) and the counters/profile report behind
//! `repro trace` and `repro profile`.
//!
//! Every run here is deterministic, and points fan out through
//! [`parallel_map`], so the emitted text is byte-identical for every
//! `--jobs` value.
//!
//! # Chrome trace mapping
//!
//! One traced run becomes one *process* (`pid`), named
//! `"<workload>/<model>"`.  Time is the simulated cycle number
//! (microseconds in the viewer's UI, which only affects the displayed
//! unit).  On `tid 0` each region occupancy is a duration span (`ph:"X"`)
//! from its `RegionEnter` to the next transfer (or the end of the run);
//! on `tid 1` each recovery episode is a span from `RecoveryStart` to
//! `RecoveryEnd`.  Commits, squashes, handled faults and latched
//! speculative exceptions are instant events (`ph:"i"`).

use crate::json::{Json, ToJson};
use crate::runner::{parallel_map, EvalParams, BENCHMARKS};
use psb_compile::{compile, ArtifactCache, CompileRequest, CompiledArtifact, ProfileSource};
use psb_core::{CountersSink, Event, Histogram, MachineConfig, ObsReport, OccupancyStats};
use psb_scalar::ScalarConfig;
use psb_sched::Model;
use std::fmt::Write as _;
use std::sync::Arc;

/// One traced or profiled (workload, model) point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ObsPoint {
    /// Workload name (one of [`BENCHMARKS`]).
    pub workload: &'static str,
    /// Scheduling model.
    pub model: Model,
}

/// Expands the `--workload` / `--model` selection into run points: every
/// selected workload crossed with every selected model, in stable
/// (benchmark-table, `Model::ALL`) order.  An empty workload list means
/// every benchmark; an empty model list means the paper's headline
/// region-predicating model.
pub fn obs_points(workloads: &[String], models: &[Model]) -> Vec<ObsPoint> {
    let workloads: Vec<&'static str> = if workloads.is_empty() {
        BENCHMARKS.to_vec()
    } else {
        BENCHMARKS
            .iter()
            .copied()
            .filter(|n| workloads.iter().any(|w| w == n))
            .collect()
    };
    let models: Vec<Model> = if models.is_empty() {
        vec![Model::RegionPred]
    } else {
        models.to_vec()
    };
    workloads
        .iter()
        .flat_map(|&w| {
            models.iter().map(move |&m| ObsPoint {
                workload: w,
                model: m,
            })
        })
        .collect()
}

/// Parses a `--model` argument against [`Model::ALL`] names.
pub fn parse_model(name: &str) -> Option<Model> {
    Model::ALL.iter().copied().find(|m| m.name() == name)
}

fn compile_point(
    p: &ObsPoint,
    params: &EvalParams,
    cache: &ArtifactCache,
) -> (Arc<CompiledArtifact>, MachineConfig) {
    let train = psb_workloads::by_name(p.workload, params.train_seed, params.size)
        .unwrap_or_else(|| panic!("unknown workload {}", p.workload));
    let eval = psb_workloads::by_name(p.workload, params.eval_seed, params.size)
        .unwrap_or_else(|| panic!("unknown workload {}", p.workload));
    let req = CompileRequest {
        program: &eval.program,
        profile: ProfileSource::Train {
            program: &train.program,
            config: ScalarConfig::default(),
        },
        sched: params.sched_config(p.model),
    };
    let art = compile(&req, cache)
        .unwrap_or_else(|e| panic!("{}/{}: compile failed: {e}", p.workload, p.model));
    (art, params.machine_config())
}

/// One run's recorded event stream (for the Chrome trace exporter).
#[derive(Clone, PartialEq, Debug)]
pub struct RunTrace {
    /// Workload name.
    pub workload: String,
    /// Model name.
    pub model: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// The full event log.
    pub events: Vec<Event>,
}

/// Runs every point with event recording on and collects the logs.
pub fn collect_traces(points: &[ObsPoint], params: &EvalParams) -> Vec<RunTrace> {
    let cache = ArtifactCache::new();
    parallel_map(points, params.jobs, |p| {
        let (art, mut mcfg) = compile_point(p, params, &cache);
        mcfg.record_events = true;
        let res = art
            .run(mcfg)
            .unwrap_or_else(|e| panic!("{}/{}: machine error: {e}", p.workload, p.model));
        RunTrace {
            workload: p.workload.to_string(),
            model: p.model.name().to_string(),
            cycles: res.cycles,
            events: res.events,
        }
    })
}

/// One run's counter-bank profile.
#[derive(Clone, PartialEq, Debug)]
pub struct RunProfile {
    /// Workload name.
    pub workload: String,
    /// Model name.
    pub model: String,
    /// Total simulated cycles (including the store-drain tail).
    pub cycles: u64,
    /// Cycles the front end stalled on instruction fetch (I$ misses).
    pub stall_ifetch: u64,
    /// Operand-stall cycles waiting on a D$-missing load.
    pub stall_load_miss: u64,
    /// I$ accesses and misses (zero under perfect memory).
    pub icache: (u64, u64),
    /// D$ accesses and misses (zero under perfect memory).
    pub dcache: (u64, u64),
    /// The counters-sink report.
    pub report: ObsReport,
}

/// Runs every point under a [`CountersSink`] and collects the reports.
pub fn collect_profiles(points: &[ObsPoint], params: &EvalParams) -> Vec<RunProfile> {
    let cache = ArtifactCache::new();
    parallel_map(points, params.jobs, |p| {
        let (art, mcfg) = compile_point(p, params, &cache);
        let (res, sink) = art
            .run_with_sink(mcfg, CountersSink::new())
            .unwrap_or_else(|e| panic!("{}/{}: machine error: {e}", p.workload, p.model));
        RunProfile {
            workload: p.workload.to_string(),
            model: p.model.name().to_string(),
            cycles: res.cycles,
            stall_ifetch: res.stall_ifetch,
            stall_load_miss: res.stall_load_miss,
            icache: (res.icache_accesses, res.icache_misses),
            dcache: (res.dcache_accesses, res.dcache_misses),
            report: sink.into_report(),
        }
    })
}

pub(crate) fn instant(name: String, cat: &str, pid: usize, ts: u64) -> Json {
    Json::obj(vec![
        ("name", Json::Str(name)),
        ("cat", Json::Str(cat.to_string())),
        ("ph", Json::Str("i".to_string())),
        ("s", Json::Str("t".to_string())),
        ("pid", pid.to_json()),
        ("tid", Json::Int(0)),
        ("ts", ts.to_json()),
    ])
}

pub(crate) fn span(name: String, cat: &str, pid: usize, tid: i64, ts: u64, dur: u64) -> Json {
    Json::obj(vec![
        ("name", Json::Str(name)),
        ("cat", Json::Str(cat.to_string())),
        ("ph", Json::Str("X".to_string())),
        ("pid", pid.to_json()),
        ("tid", Json::Int(tid)),
        ("ts", ts.to_json()),
        ("dur", dur.to_json()),
    ])
}

pub(crate) fn metadata(name: &str, pid: usize, tid: Option<i64>, value: &str) -> Json {
    let mut fields = vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::Int(pid as i64)),
    ];
    if let Some(t) = tid {
        fields.push(("tid", Json::Int(t)));
    }
    fields.push((
        "args",
        Json::obj(vec![("name", Json::Str(value.to_string()))]),
    ));
    Json::obj(fields)
}

/// Emits one traced run's process metadata and events under `pid`,
/// appending trace-event objects to `out`.
///
/// `max_events` caps the emitted span/instant count (metadata excluded);
/// a truncated run gets a final `truncated` instant marker instead of
/// the trailing region span.  [`chrome_trace`] passes `usize::MAX`; the
/// merged host+guest exporter caps each guest run so a full bench sweep
/// stays loadable in Perfetto.
pub(crate) fn push_run_events(out: &mut Vec<Json>, t: &RunTrace, pid: usize, max_events: usize) {
    out.push(metadata(
        "process_name",
        pid,
        None,
        &format!("{}/{}", t.workload, t.model),
    ));
    out.push(metadata("thread_name", pid, Some(0), "regions"));
    out.push(metadata("thread_name", pid, Some(1), "recovery"));

    let mut emitted = 0usize;
    // Region spans: the run starts in the region at word 0; each
    // RegionEnter closes the previous span.
    let mut region = (0usize, 0u64); // (entry word, start cycle)
    let mut recovery_start: Option<(u64, usize)> = None;
    for e in &t.events {
        if emitted >= max_events {
            out.push(instant(
                format!("truncated after {emitted} events"),
                "meta",
                pid,
                region.1,
            ));
            return;
        }
        match *e {
            Event::RegionEnter { cycle, addr } => {
                out.push(span(
                    format!("region W{}", region.0),
                    "region",
                    pid,
                    0,
                    region.1,
                    cycle.saturating_sub(region.1),
                ));
                emitted += 1;
                region = (addr, cycle);
            }
            Event::RecoveryStart { cycle, epc, .. } => {
                recovery_start = Some((cycle, epc));
            }
            Event::RecoveryEnd { cycle } => {
                if let Some((start, epc)) = recovery_start.take() {
                    out.push(span(
                        format!("recovery EPC=W{epc}"),
                        "recovery",
                        pid,
                        1,
                        start,
                        cycle.saturating_sub(start),
                    ));
                    emitted += 1;
                }
            }
            Event::Commit { cycle, loc } => {
                out.push(instant(format!("commit {loc}"), "commit", pid, cycle));
                emitted += 1;
            }
            Event::Squash { cycle, loc } => {
                out.push(instant(format!("squash {loc}"), "squash", pid, cycle));
                emitted += 1;
            }
            Event::FaultHandled { cycle, addr } => {
                out.push(instant(format!("fault @{addr}"), "fault", pid, cycle));
                emitted += 1;
            }
            Event::ExcLatched { cycle, addr } => {
                out.push(instant(format!("exc latched @{addr}"), "fault", pid, cycle));
                emitted += 1;
            }
            _ => {}
        }
    }
    out.push(span(
        format!("region W{}", region.0),
        "region",
        pid,
        0,
        region.1,
        t.cycles.saturating_sub(region.1),
    ));
}

/// Builds the Chrome trace-event document for a set of traced runs.
pub fn chrome_trace(traces: &[RunTrace]) -> Json {
    let mut out: Vec<Json> = Vec::new();
    for (pid, t) in traces.iter().enumerate() {
        push_run_events(&mut out, t, pid, usize::MAX);
    }
    Json::obj(vec![
        ("traceEvents", Json::Array(out)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

fn histogram_json(h: &Histogram) -> Json {
    Json::obj(vec![
        ("count", h.count().to_json()),
        ("sum", h.sum().to_json()),
        ("min", h.min().to_json()),
        ("max", h.max().to_json()),
        ("mean", h.mean().to_json()),
        ("buckets", h.buckets().to_json()),
    ])
}

fn occupancy_json(o: &OccupancyStats) -> Json {
    Json::obj(vec![
        ("mean", o.mean().to_json()),
        ("high_water", o.high_water().to_json()),
        ("samples", o.samples().to_json()),
    ])
}

impl ToJson for RunProfile {
    fn to_json(&self) -> Json {
        let r = &self.report;
        let words: Vec<Json> = r
            .words
            .iter()
            .map(|(&w, p)| {
                Json::obj(vec![
                    ("word", w.to_json()),
                    ("stall_operand", p.stall_operand.to_json()),
                    ("stall_sb_full", p.stall_sb_full.to_json()),
                    ("stall_busy", p.stall_busy.to_json()),
                    ("stall_ifetch", p.stall_ifetch.to_json()),
                    ("stall_load_miss", p.stall_load_miss.to_json()),
                    ("recoveries", p.recoveries.to_json()),
                ])
            })
            .collect();
        let regions: Vec<Json> = r
            .regions
            .iter()
            .map(|(&a, p)| {
                Json::obj(vec![
                    ("region", a.to_json()),
                    ("entries", p.entries.to_json()),
                    ("commits", p.commits.to_json()),
                    ("squashes", p.squashes.to_json()),
                    ("recoveries", p.recoveries.to_json()),
                    ("stall_cycles", p.stall_cycles.to_json()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("workload", self.workload.to_json()),
            ("model", self.model.to_json()),
            ("cycles", self.cycles.to_json()),
            ("stall_ifetch", self.stall_ifetch.to_json()),
            ("stall_load_miss", self.stall_load_miss.to_json()),
            ("icache_accesses", self.icache.0.to_json()),
            ("icache_misses", self.icache.1.to_json()),
            ("dcache_accesses", self.dcache.0.to_json()),
            ("dcache_misses", self.dcache.1.to_json()),
            ("shadow_occupancy", occupancy_json(&r.shadow_occupancy)),
            ("sb_occupancy", occupancy_json(&r.sb_occupancy)),
            ("unspec_conds", occupancy_json(&r.unspec_conds)),
            ("lifetime", histogram_json(&r.lifetime)),
            ("recovery", histogram_json(&r.recovery)),
            ("stall_runs", histogram_json(&r.stall_runs)),
            ("commits", r.commits.to_json()),
            ("squashes", r.squashes.to_json()),
            ("recoveries", r.recoveries.to_json()),
            ("faults_handled", r.faults_handled.to_json()),
            ("exc_latched", r.exc_latched.to_json()),
            ("words", Json::Array(words)),
            ("regions", Json::Array(regions)),
        ])
    }
}

fn render_histogram(s: &mut String, label: &str, h: &Histogram) {
    write!(
        s,
        "  {label:<12} n={} mean={:.2} min={} max={}",
        h.count(),
        h.mean(),
        h.min(),
        h.max()
    )
    .unwrap();
    if h.count() > 0 {
        write!(s, "  |").unwrap();
        for (i, &c) in h.buckets().iter().enumerate() {
            let (lo, hi) = Histogram::bucket_range(i);
            if c > 0 {
                if lo == hi {
                    write!(s, " {lo}:{c}").unwrap();
                } else {
                    write!(s, " {lo}-{hi}:{c}").unwrap();
                }
            }
        }
    }
    writeln!(s).unwrap();
}

/// Renders the profile reports as text.
pub fn render_profile(profiles: &[RunProfile]) -> String {
    let mut s = String::new();
    for p in profiles {
        let r = &p.report;
        writeln!(
            s,
            "{}/{}: {} cycles, {} commits, {} squashes, {} recoveries, \
             {} faults, {} spec exceptions latched",
            p.workload,
            p.model,
            p.cycles,
            r.commits,
            r.squashes,
            r.recoveries,
            r.faults_handled,
            r.exc_latched
        )
        .unwrap();
        writeln!(
            s,
            "  occupancy     shadow mean={:.2} high={}   sb mean={:.2} high={}   \
             unspec-conds mean={:.2} high={}",
            r.shadow_occupancy.mean(),
            r.shadow_occupancy.high_water(),
            r.sb_occupancy.mean(),
            r.sb_occupancy.high_water(),
            r.unspec_conds.mean(),
            r.unspec_conds.high_water()
        )
        .unwrap();
        if p.icache.0 + p.dcache.0 > 0 {
            let rate = |(a, m): (u64, u64)| {
                if a == 0 {
                    0.0
                } else {
                    100.0 * m as f64 / a as f64
                }
            };
            writeln!(
                s,
                "  memory        ifetch stalls={} load-miss stalls={}   \
                 I$ {}/{} misses ({:.1}%)   D$ {}/{} misses ({:.1}%)",
                p.stall_ifetch,
                p.stall_load_miss,
                p.icache.1,
                p.icache.0,
                rate(p.icache),
                p.dcache.1,
                p.dcache.0,
                rate(p.dcache)
            )
            .unwrap();
        }
        render_histogram(&mut s, "lifetime", &r.lifetime);
        render_histogram(&mut s, "recovery", &r.recovery);
        render_histogram(&mut s, "stall-runs", &r.stall_runs);
        let hot = r.hottest_words(5);
        if !hot.is_empty() {
            writeln!(
                s,
                "  hottest words (stall cycles; operand/sb-full/busy/ifetch/load-miss):"
            )
            .unwrap();
            for (w, wp) in hot {
                writeln!(
                    s,
                    "    W{w:<5} {:>7} ({}/{}/{}/{}/{}){}",
                    wp.stall_total(),
                    wp.stall_operand,
                    wp.stall_sb_full,
                    wp.stall_busy,
                    wp.stall_ifetch,
                    wp.stall_load_miss,
                    if wp.recoveries > 0 {
                        format!("  {} recoveries", wp.recoveries)
                    } else {
                        String::new()
                    }
                )
                .unwrap();
            }
        }
        let mut regions: Vec<_> = r.regions.iter().collect();
        regions.sort_by(|a, b| {
            (b.1.stall_cycles + b.1.squashes)
                .cmp(&(a.1.stall_cycles + a.1.squashes))
                .then(a.0.cmp(b.0))
        });
        writeln!(
            s,
            "  hottest regions (entries/commits/squashes/recov/stall):"
        )
        .unwrap();
        for (a, rp) in regions.into_iter().take(5) {
            writeln!(
                s,
                "    W{a:<5} {:>7} {:>8} {:>8} {:>6} {:>7}",
                rp.entries, rp.commits, rp.squashes, rp.recoveries, rp.stall_cycles
            )
            .unwrap();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_expand_and_filter() {
        assert_eq!(obs_points(&[], &[]).len(), BENCHMARKS.len());
        let one = obs_points(&["grep".to_string()], &[Model::Trace]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].workload, "grep");
        assert!(obs_points(&["nope".to_string()], &[]).is_empty());
        let pair = obs_points(&["grep".to_string(), "li".to_string()], &Model::ALL);
        assert_eq!(pair.len(), 2 * Model::ALL.len());
        assert_eq!(parse_model("region-pred"), Some(Model::RegionPred));
        assert_eq!(parse_model("bogus"), None);
    }

    #[test]
    fn cache_model_profiles_attribute_memory_stalls() {
        use psb_core::{CacheConfig, MemoryModel};
        let params = EvalParams {
            size: 96,
            memory: MemoryModel::Cache {
                icache: Some(CacheConfig::parse("8x1x2x1x4").unwrap()),
                dcache: Some(CacheConfig::parse("4x2x2x1x6").unwrap()),
            },
            ..EvalParams::default()
        };
        let points = obs_points(&["grep".to_string()], &[]);
        let profiles = collect_profiles(&points, &params);
        let p = &profiles[0];
        assert!(p.icache.0 > 0 && p.icache.1 > 0, "I$ must see traffic");
        assert!(p.stall_ifetch > 0, "I$ misses must stall the front end");
        // The per-word attribution sums to the aggregate counters.
        let (wi, wl) = p.report.words.values().fold((0, 0), |(i, l), w| {
            (i + w.stall_ifetch, l + w.stall_load_miss)
        });
        assert_eq!((wi, wl), (p.stall_ifetch, p.stall_load_miss));
        let text = render_profile(&profiles);
        assert!(text.contains("memory"), "{text}");
        assert!(text.contains("I$"), "{text}");
        let doc = to_json_string(&profiles);
        assert!(doc.contains("\"icache_misses\""));
    }

    fn to_json_string(profiles: &[RunProfile]) -> String {
        Json::Array(profiles.iter().map(ToJson::to_json).collect()).pretty()
    }

    #[test]
    fn trace_and_profile_agree_on_totals() {
        let params = EvalParams {
            size: 96,
            ..EvalParams::default()
        };
        let points = obs_points(&["grep".to_string()], &[]);
        let traces = collect_traces(&points, &params);
        let profiles = collect_profiles(&points, &params);
        assert_eq!(traces.len(), 1);
        assert_eq!(profiles.len(), 1);
        assert_eq!(traces[0].cycles, profiles[0].cycles);
        let commits = traces[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Commit { .. }))
            .count() as u64;
        assert_eq!(commits, profiles[0].report.commits);
        let doc = chrome_trace(&traces).pretty();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("grep/region-pred"));
        let text = render_profile(&profiles);
        assert!(text.starts_with("grep/region-pred:"));
    }
}
