//! The `repro` command line, hoisted out of the binary so it is
//! unit-testable and uniform across subcommands.
//!
//! Every flag is parsed here, once, before any dispatch — in particular
//! `--jobs` goes through [`parse_jobs`] for *every* subcommand, so a new
//! subcommand cannot regress to accepting `--jobs 0` by wiring its own
//! ad-hoc parse (the bug class this module exists to close out).
//! [`Cli::parse`] returns a typed result; only the binary turns errors
//! into `exit(2)`.

use crate::runner::{parse_jobs, EvalParams};
use crate::{parse_engines, parse_model, BenchParams, FuzzParams};
use psb_core::MemoryModel;
use psb_sched::Model;

/// Everything one `repro` invocation asked for.
#[derive(Clone, Debug)]
pub struct Cli {
    /// The subcommand (`"all"` when none was given).
    pub what: String,
    /// Shared experiment parameters (`--size`, `--jobs`, seeds, …).
    pub params: EvalParams,
    /// Fuzz-specific parameters (`--seed`, `--runs`, …).
    pub fuzz_params: FuzzParams,
    /// Bench-specific parameters (`--engine`, `--target-cycles`, …).
    pub bench_params: BenchParams,
    /// `--json`.
    pub json: bool,
    /// `--deterministic`.
    pub deterministic: bool,
    /// `--check BASELINE.json`.
    pub check: Option<String>,
    /// `--cache-check`.
    pub cache_check: bool,
    /// `--tolerance FRAC` (default 0.2).
    pub tolerance: f64,
    /// `--workload W[,W...]` accumulations.
    pub workloads: Vec<String>,
    /// `--model M|all` accumulations.
    pub models: Vec<Model>,
    /// `--out FILE`.
    pub out: Option<String>,
    /// `--telemetry [FILE]`.
    pub telemetry: Option<String>,
    /// `--addr HOST:PORT` for `serve` (bind) and `loadgen` (target).
    pub addr: Option<String>,
    /// `--queue-depth N` for `serve` (default 64).
    pub queue_depth: usize,
    /// `--cycle-budget N` for `serve`.
    pub cycle_budget: Option<u64>,
    /// `--store DIR` for `serve` and `compile` (persistent artifacts).
    pub store: Option<String>,
    /// `--requests N` for `loadgen` (default 100).
    pub requests: usize,
    /// `--grid SPEC` for `sweep` (dimension overrides, `dim=v1,v2;...`).
    pub grid: Option<String>,
    /// `--batch-width N` for `sweep` (lanes per lockstep batch).
    pub batch_width: Option<usize>,
    /// `--memory SPEC` for `bench` and the profiling subcommands
    /// (`perfect | fixed:LOAD:FETCH | cache[:I:D]`).
    pub memory: Option<MemoryModel>,
    /// `--store-max-bytes N` for `serve` and `compile` (disk-store
    /// size cap; oldest artifacts are evicted past it).
    pub store_max_bytes: Option<u64>,
    /// `--read-timeout-ms N` for `serve` (keep-alive read timeout;
    /// default 10s — a stalled client cannot pin a worker forever).
    pub read_timeout_ms: u64,
}

impl Default for Cli {
    fn default() -> Cli {
        Cli {
            what: "all".to_string(),
            params: EvalParams::default(),
            fuzz_params: FuzzParams::default(),
            bench_params: BenchParams::default(),
            json: false,
            deterministic: false,
            check: None,
            cache_check: false,
            tolerance: 0.2,
            workloads: Vec::new(),
            models: Vec::new(),
            out: None,
            telemetry: None,
            addr: None,
            queue_depth: 64,
            cycle_budget: None,
            store: None,
            requests: 100,
            grid: None,
            batch_width: None,
            memory: None,
            store_max_bytes: None,
            read_timeout_ms: 10_000,
        }
    }
}

impl Cli {
    /// Parses the argument list (without the program name).
    ///
    /// # Errors
    ///
    /// A ready-to-print message for the first invalid flag or operand.
    pub fn parse(args: &[String]) -> Result<Cli, String> {
        let mut cli = Cli::default();
        let mut i = 0;
        // A required operand for the flag at `args[i]`.
        let operand = |i: &mut usize, what: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs {what}", args[*i - 1]))
        };
        fn num<T: std::str::FromStr>(flag: &str, v: &str, what: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("{flag} needs {what}"))
        }
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    let v = operand(&mut i, "a number")?;
                    cli.fuzz_params.seed = num("--seed", &v, "a number")?;
                }
                "--runs" => {
                    let v = operand(&mut i, "a number")?;
                    cli.fuzz_params.runs = num("--runs", &v, "a number")?;
                }
                "--time-budget" => {
                    let v = operand(&mut i, "seconds > 0")?;
                    let t: f64 = num("--time-budget", &v, "seconds > 0")?;
                    if t <= 0.0 {
                        return Err("--time-budget needs seconds > 0".to_string());
                    }
                    cli.fuzz_params.time_budget = Some(t);
                }
                "--corpus" => {
                    cli.fuzz_params.corpus_dir = operand(&mut i, "a directory")?.into();
                }
                "--inject-recovery-bug" => cli.fuzz_params.inject_recovery_bug = true,
                "--quick" => {
                    cli.params.size = cli.params.size.min(512);
                    cli.bench_params.quick = true;
                }
                "--json" => cli.json = true,
                "--deterministic" => cli.deterministic = true,
                "--engine" => {
                    let e = operand(&mut i, "tabled|predecoded|legacy|both|all")?;
                    cli.bench_params.engines = parse_engines(&e).ok_or_else(|| {
                        format!("unknown engine {e} (tabled|predecoded|legacy|both|all)")
                    })?;
                    // `repro fuzz` drives one engine per sweep; multi-engine
                    // selections (`both`, `all`) stay bench-only.
                    if let [single] = cli.bench_params.engines[..] {
                        cli.fuzz_params.engine = single;
                    }
                }
                "--target-cycles" => {
                    let v = operand(&mut i, "a number > 0")?;
                    let t: u64 = num("--target-cycles", &v, "a number > 0")?;
                    if t == 0 {
                        return Err("--target-cycles needs a number > 0".to_string());
                    }
                    cli.bench_params.target_cycles = Some(t);
                }
                "--check" => cli.check = Some(operand(&mut i, "a baseline file")?),
                "--tolerance" => {
                    let v = operand(&mut i, "a fraction >= 0")?;
                    let t: f64 = num("--tolerance", &v, "a fraction >= 0")?;
                    if t < 0.0 {
                        return Err("--tolerance needs a fraction >= 0".to_string());
                    }
                    cli.tolerance = t;
                }
                "--workload" => {
                    let list = operand(&mut i, "a benchmark name (comma-separated ok)")?;
                    for w in list.split(',').filter(|w| !w.is_empty()) {
                        if !crate::BENCHMARKS.contains(&w) {
                            return Err(format!("unknown workload {w}"));
                        }
                        cli.workloads.push(w.to_string());
                    }
                }
                "--model" => {
                    let m = operand(&mut i, "a model name (or `all`)")?;
                    if m == "all" {
                        cli.models = Model::ALL.to_vec();
                    } else {
                        cli.models
                            .push(parse_model(&m).ok_or_else(|| format!("unknown model {m}"))?);
                    }
                }
                "--cache-check" => cli.cache_check = true,
                "--out" => cli.out = Some(operand(&mut i, "a file path")?),
                "--size" => {
                    let v = operand(&mut i, "a number")?;
                    cli.params.size = num("--size", &v, "a number")?;
                }
                "--train-seed" => {
                    let v = operand(&mut i, "a number")?;
                    cli.params.train_seed = num("--train-seed", &v, "a number")?;
                }
                "--eval-seed" => {
                    let v = operand(&mut i, "a number")?;
                    cli.params.eval_seed = num("--eval-seed", &v, "a number")?;
                }
                "--jobs" => {
                    // The one shared gate: every subcommand's worker count
                    // goes through the typed parse (rejects 0).
                    let v = operand(&mut i, "a number >= 1")?;
                    cli.params.jobs = parse_jobs(&v).map_err(|e| e.to_string())?;
                }
                "--addr" => cli.addr = Some(operand(&mut i, "host:port")?),
                "--queue-depth" => {
                    let v = operand(&mut i, "a number >= 1")?;
                    let d: usize = num("--queue-depth", &v, "a number >= 1")?;
                    if d == 0 {
                        return Err("--queue-depth needs a number >= 1".to_string());
                    }
                    cli.queue_depth = d;
                }
                "--cycle-budget" => {
                    let v = operand(&mut i, "a number > 0")?;
                    let b: u64 = num("--cycle-budget", &v, "a number > 0")?;
                    if b == 0 {
                        return Err("--cycle-budget needs a number > 0".to_string());
                    }
                    cli.cycle_budget = Some(b);
                }
                "--store" => cli.store = Some(operand(&mut i, "a directory")?),
                "--store-max-bytes" => {
                    let v = operand(&mut i, "a byte count > 0")?;
                    let b: u64 = num("--store-max-bytes", &v, "a byte count > 0")?;
                    if b == 0 {
                        return Err("--store-max-bytes needs a byte count > 0".to_string());
                    }
                    cli.store_max_bytes = Some(b);
                }
                "--read-timeout-ms" => {
                    let v = operand(&mut i, "milliseconds > 0")?;
                    let t: u64 = num("--read-timeout-ms", &v, "milliseconds > 0")?;
                    if t == 0 {
                        return Err("--read-timeout-ms needs milliseconds > 0".to_string());
                    }
                    cli.read_timeout_ms = t;
                }
                "--memory" => {
                    let spec = operand(&mut i, "perfect | fixed:LOAD:FETCH | cache[:I:D]")?;
                    let m = MemoryModel::parse(&spec).map_err(|e| format!("--memory: {e}"))?;
                    m.validate().map_err(|e| format!("--memory: {e}"))?;
                    cli.memory = Some(m);
                }
                "--grid" => cli.grid = Some(operand(&mut i, "a grid spec (dim=v1,v2;...)")?),
                "--batch-width" => {
                    let v = operand(&mut i, "a number >= 1")?;
                    let b: usize = num("--batch-width", &v, "a number >= 1")?;
                    if b == 0 {
                        return Err("--batch-width needs a number >= 1".to_string());
                    }
                    cli.batch_width = Some(b);
                }
                "--requests" => {
                    let v = operand(&mut i, "a number")?;
                    cli.requests = num("--requests", &v, "a number")?;
                }
                "--telemetry" => {
                    // The path operand is optional: consume the next token
                    // only when it doesn't look like a flag.
                    cli.telemetry = Some(match args.get(i + 1) {
                        Some(p) if !p.starts_with('-') => {
                            i += 1;
                            p.clone()
                        }
                        _ => "telemetry.json".to_string(),
                    });
                }
                w if !w.starts_with('-') => cli.what = w.to_string(),
                other => return Err(format!("unknown flag {other}")),
            }
            i += 1;
        }
        Ok(cli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<String>>())
    }

    #[test]
    fn defaults_and_subcommand_selection() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.what, "all");
        assert_eq!(cli.params.jobs, 1);
        let cli = parse(&["bench", "--quick", "--deterministic"]).unwrap();
        assert_eq!(cli.what, "bench");
        assert!(cli.bench_params.quick && cli.deterministic);
    }

    #[test]
    fn jobs_zero_is_rejected_for_every_subcommand() {
        // The hoisted parse applies before dispatch, so the new server
        // subcommands share the same rejection as the old experiments.
        for cmd in ["bench", "fuzz", "metrics", "serve", "loadgen", "compile"] {
            let err = parse(&[cmd, "--jobs", "0"]).expect_err(cmd);
            assert!(err.contains("--jobs"), "{cmd}: {err}");
            for bad in ["-1", "four", ""] {
                assert!(parse(&[cmd, "--jobs", bad]).is_err(), "{cmd} --jobs {bad}");
            }
            assert_eq!(parse(&[cmd, "--jobs", "4"]).unwrap().params.jobs, 4);
        }
    }

    #[test]
    fn serve_and_loadgen_flags_parse() {
        let cli = parse(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            "2",
            "--queue-depth",
            "8",
            "--cycle-budget",
            "100000",
            "--store",
            "/tmp/psb-store",
            "--deterministic",
        ])
        .unwrap();
        assert_eq!(cli.what, "serve");
        assert_eq!(cli.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!((cli.params.jobs, cli.queue_depth), (2, 8));
        assert_eq!(cli.cycle_budget, Some(100_000));
        assert_eq!(cli.store.as_deref(), Some("/tmp/psb-store"));
        assert!(cli.deterministic);

        let cli = parse(&[
            "loadgen",
            "--addr",
            "h:1",
            "--requests",
            "250",
            "--seed",
            "9",
        ])
        .unwrap();
        assert_eq!(cli.what, "loadgen");
        assert_eq!(cli.requests, 250);
        assert_eq!(cli.fuzz_params.seed, 9);

        for bad in [
            &["serve", "--queue-depth", "0"][..],
            &["serve", "--cycle-budget", "0"],
            &["serve", "--addr"],
            &["loadgen", "--requests", "many"],
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn sweep_flags_parse() {
        let cli = parse(&[
            "sweep",
            "--grid",
            "sb=2,4;scan=naive",
            "--batch-width",
            "12",
            "--jobs",
            "4",
            "--deterministic",
            "--check",
            "baselines/sweep_baseline.json",
        ])
        .unwrap();
        assert_eq!(cli.what, "sweep");
        assert_eq!(cli.grid.as_deref(), Some("sb=2,4;scan=naive"));
        assert_eq!(cli.batch_width, Some(12));
        assert_eq!(cli.params.jobs, 4);
        assert!(cli.deterministic);
        assert_eq!(cli.check.as_deref(), Some("baselines/sweep_baseline.json"));
        // The shared numeric validation applies to the new flag too.
        for bad in ["0", "-3", "wide", ""] {
            assert!(parse(&["sweep", "--batch-width", bad]).is_err(), "{bad}");
        }
        assert!(parse(&["sweep", "--grid"]).is_err());
    }

    #[test]
    fn memory_store_and_timeout_flags_parse() {
        let cli = parse(&["bench", "--memory", "fixed:3:2"]).unwrap();
        assert_eq!(
            cli.memory,
            Some(psb_core::MemoryModel::FixedLatency { load: 3, fetch: 2 })
        );
        let cli = parse(&["bench", "--memory", "cache:8x1x2x1x4:64x2x4x1x10"]).unwrap();
        match cli.memory {
            Some(psb_core::MemoryModel::Cache { icache, dcache }) => {
                assert_eq!(icache.unwrap().sets, 8);
                assert_eq!(dcache.unwrap().sets, 64);
            }
            other => panic!("wrong memory model: {other:?}"),
        }
        assert_eq!(
            parse(&["bench", "--memory", "perfect"]).unwrap().memory,
            Some(psb_core::MemoryModel::Perfect)
        );
        // Parse and validation errors both surface with the flag name.
        for bad in [
            "slow",
            "fixed:0:1",
            "cache:8x1x2:off",
            "cache:0x1x1x1x1:off",
        ] {
            let err = parse(&["bench", "--memory", bad]).expect_err(bad);
            assert!(err.contains("--memory"), "{bad}: {err}");
        }

        let cli = parse(&["serve", "--store-max-bytes", "65536"]).unwrap();
        assert_eq!(cli.store_max_bytes, Some(65_536));
        for bad in ["0", "-1", "big", ""] {
            assert!(
                parse(&["serve", "--store-max-bytes", bad]).is_err(),
                "{bad}"
            );
        }

        let cli = parse(&[]).unwrap();
        assert_eq!(cli.read_timeout_ms, 10_000, "default read timeout is 10s");
        let cli = parse(&["serve", "--read-timeout-ms", "250"]).unwrap();
        assert_eq!(cli.read_timeout_ms, 250);
        for bad in ["0", "soon"] {
            assert!(
                parse(&["serve", "--read-timeout-ms", bad]).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn existing_flags_still_parse_through_the_hoist() {
        let cli = parse(&[
            "compile",
            "--workload",
            "grep,li",
            "--model",
            "all",
            "--size",
            "96",
            "--json",
            "--out",
            "x.json",
            "--telemetry",
        ])
        .unwrap();
        assert_eq!(cli.workloads, vec!["grep", "li"]);
        assert_eq!(cli.models.len(), Model::ALL.len());
        assert_eq!(cli.params.size, 96);
        assert_eq!(cli.out.as_deref(), Some("x.json"));
        // --telemetry with no operand defaults; flags after it survive.
        assert_eq!(cli.telemetry.as_deref(), Some("telemetry.json"));
        assert!(parse(&["--workload", "nope"]).is_err());
        assert!(parse(&["--model", "nope"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }
}
