//! The named experiments: one function per table/figure of the paper.

use crate::json::{Json, ToJson};
use crate::runner::{
    geometric_mean, parallel_map, run_scalar, run_workload, BenchResult, EvalParams, BENCHMARKS,
};
use psb_compile::{compile, ArtifactCache, CompileRequest, ProfileSource};
use psb_isa::Resources;
use psb_scalar::{successive_accuracy, ScalarConfig};
use psb_sched::Model;

/// One row of the Table 2 reproduction.
#[derive(Clone, PartialEq, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// What the kernel models.
    pub description: String,
    /// Static instruction count (the paper reports source lines; we report
    /// kernel instructions).
    pub static_len: usize,
    /// Scalar baseline cycles on the evaluation input.
    pub scalar_cycles: u64,
}

impl ToJson for Table2Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("description", self.description.to_json()),
            ("static_len", self.static_len.to_json()),
            ("scalar_cycles", self.scalar_cycles.to_json()),
        ])
    }
}

/// Table 2: the benchmark inventory with scalar baseline cycles.
pub fn table2(params: &EvalParams) -> Vec<Table2Row> {
    parallel_map(&BENCHMARKS, params.jobs, |name| {
        let w = psb_workloads::by_name(name, params.eval_seed, params.size).expect("known");
        let res = run_scalar(&w);
        Table2Row {
            name: w.name.to_string(),
            description: w.description.to_string(),
            static_len: w.program.static_len(),
            scalar_cycles: res.cycles,
        }
    })
}

/// One row of the Table 3 reproduction: prediction accuracy for 1..=8
/// successive branches.
#[derive(Clone, PartialEq, Debug)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// `accuracy[n-1]` = probability that `n` successive branches all
    /// follow their static prediction.
    pub accuracy: Vec<f64>,
}

impl ToJson for Table3Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("accuracy", self.accuracy.to_json()),
        ])
    }
}

/// Table 3: static prediction accuracy of successive branches, with the
/// prediction trained on the training input and measured on the
/// evaluation input.
pub fn table3(params: &EvalParams) -> Vec<Table3Row> {
    parallel_map(&BENCHMARKS, params.jobs, |name| {
        let train = psb_workloads::by_name(name, params.train_seed, params.size).unwrap();
        let eval = psb_workloads::by_name(name, params.eval_seed, params.size).unwrap();
        let profile = run_scalar(&train).edge_profile;
        let trace = run_scalar(&eval).branch_trace;
        let accuracy = successive_accuracy(&trace, |b| profile.predict_taken(b), 8);
        Table3Row {
            name: name.to_string(),
            accuracy,
        }
    })
}

/// A figure-style result: per-benchmark speedups for a set of models plus
/// geometric means.
#[derive(Clone, PartialEq, Debug)]
pub struct FigureResult {
    /// The figure's models, in presentation order.
    pub models: Vec<String>,
    /// Per-benchmark results.
    pub benches: Vec<BenchResult>,
    /// Geometric-mean speedup per model, aligned with `models`.
    pub geomeans: Vec<f64>,
}

impl ToJson for FigureResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("models", self.models.to_json()),
            ("benches", self.benches.to_json()),
            ("geomeans", self.geomeans.to_json()),
        ])
    }
}

fn figure(models: &[Model], params: &EvalParams) -> FigureResult {
    let cache = ArtifactCache::new();
    let benches: Vec<BenchResult> = parallel_map(&BENCHMARKS, params.jobs, |n| {
        run_workload(n, models, params, &cache)
    });
    let geomeans = models
        .iter()
        .map(|&m| {
            let sp: Vec<f64> = benches.iter().filter_map(|b| b.speedup_of(m)).collect();
            geometric_mean(&sp)
        })
        .collect();
    FigureResult {
        models: models.iter().map(|m| m.name().to_string()).collect(),
        benches,
        geomeans,
    }
}

/// Figure 6: the restricted speculative-execution models (no predicated
/// state buffering): global, squashing, trace, region scheduling.
pub fn fig6(params: &EvalParams) -> FigureResult {
    figure(
        &[
            Model::Global,
            Model::Squash,
            Model::Trace,
            Model::RegionSquash,
        ],
        params,
    )
}

/// Figure 7: the predicating models against the conventional ones:
/// global, boosting, trace predicating, region predicating.
pub fn fig7(params: &EvalParams) -> FigureResult {
    figure(
        &[
            Model::Global,
            Model::Boost,
            Model::TracePred,
            Model::RegionPred,
        ],
        params,
    )
}

/// One cell of the Figure 8 sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct Fig8Cell {
    /// Issue width of the full-issue machine.
    pub width: usize,
    /// Allowed speculation depth (conditions).
    pub depth: usize,
    /// Geometric-mean speedup of region predicating.
    pub geomean: f64,
    /// Per-benchmark speedups in [`BENCHMARKS`](crate::BENCHMARKS) order.
    pub speedups: Vec<f64>,
}

impl ToJson for Fig8Cell {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("width", self.width.to_json()),
            ("depth", self.depth.to_json()),
            ("geomean", self.geomean.to_json()),
            ("speedups", self.speedups.to_json()),
        ])
    }
}

/// The Figure 8 sweep result.
#[derive(Clone, PartialEq, Debug)]
pub struct Fig8Result {
    /// All cells, ordered by width then depth.
    pub cells: Vec<Fig8Cell>,
}

impl ToJson for Fig8Result {
    fn to_json(&self) -> Json {
        Json::obj(vec![("cells", self.cells.to_json())])
    }
}

/// Figure 8: full-issue machines (2/4/8-issue, fully duplicated
/// resources) under speculation depths 1, 2, 4 and 8 conditions, using
/// the region-predicating model with an 8-entry CCR.
pub fn fig8(params: &EvalParams) -> Fig8Result {
    // The full (width × depth × benchmark) grid as one flat work list, so
    // the thread pool stays busy across cell boundaries.
    let points: Vec<(usize, usize, &str)> = [2usize, 4, 8]
        .iter()
        .flat_map(|&w| {
            [1usize, 2, 4, 8]
                .iter()
                .flat_map(move |&d| BENCHMARKS.iter().map(move |&n| (w, d, n)))
        })
        .collect();
    let cache = ArtifactCache::new();
    let speedups = parallel_map(&points, params.jobs, |&(width, depth, name)| {
        let p = EvalParams {
            issue_width: width,
            resources: Resources::full_issue(width),
            num_conds: 8,
            depth,
            ..params.clone()
        };
        run_workload(name, &[Model::RegionPred], &p, &cache).models[0].speedup
    });
    let cells = points
        .chunks(BENCHMARKS.len())
        .zip(speedups.chunks(BENCHMARKS.len()))
        .map(|(ps, sp)| Fig8Cell {
            width: ps[0].0,
            depth: ps[0].1,
            geomean: geometric_mean(sp),
            speedups: sp.to_vec(),
        })
        .collect();
    Fig8Result { cells }
}

/// An A/B ablation result.
#[derive(Clone, PartialEq, Debug)]
pub struct AblationResult {
    /// What is being compared.
    pub label: String,
    /// Benchmark names.
    pub benches: Vec<String>,
    /// Speedups under the paper's design.
    pub base: Vec<f64>,
    /// Speedups under the alternative.
    pub variant: Vec<f64>,
    /// Geometric means (base, variant).
    pub geomeans: (f64, f64),
}

impl ToJson for AblationResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("benches", self.benches.to_json()),
            ("base", self.base.to_json()),
            ("variant", self.variant.to_json()),
            ("geomeans", self.geomeans.to_json()),
        ])
    }
}

fn ablation(
    label: &str,
    model: Model,
    params: &EvalParams,
    variant: impl Fn(&mut EvalParams),
) -> AblationResult {
    let mut vparams = params.clone();
    variant(&mut vparams);
    let cache = ArtifactCache::new();
    let pairs = parallel_map(&BENCHMARKS, params.jobs, |n| {
        (
            run_workload(n, &[model], params, &cache).models[0].speedup,
            run_workload(n, &[model], &vparams, &cache).models[0].speedup,
        )
    });
    let (base, var): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
    AblationResult {
        label: label.to_string(),
        benches: BENCHMARKS.iter().map(|s| s.to_string()).collect(),
        geomeans: (geometric_mean(&base), geometric_mean(&var)),
        base,
        variant: var,
    }
}

/// Footnote 1 ablation: single shadow register per sequential register
/// (the paper's cost-reduced design) versus unbounded shadow storage.
/// The paper reports the single-shadow model costs only 0–1%.
pub fn ablation_shadow(params: &EvalParams) -> AblationResult {
    ablation(
        "single vs infinite shadow registers (region-pred)",
        Model::RegionPred,
        params,
        |p| p.infinite_shadow = true,
    )
}

/// Section 4.2.1 ablation: vector-form predicates (condition-sets may be
/// reordered) versus counter-form predicates (condition-sets execute
/// sequentially), under trace predicating where the paper discusses it.
pub fn ablation_counter(params: &EvalParams) -> AblationResult {
    ablation(
        "vector-form vs counter-form predicates (trace-pred)",
        Model::TracePred,
        params,
        |p| p.ordered_cond_sets = true,
    )
}

/// The scope × hardware interaction (Section 4.1's closing observation).
#[derive(Clone, PartialEq, Debug)]
pub struct InteractionResult {
    /// Geomean speedup of trace scheduling (trace scope, squash hardware).
    pub trace_squash: f64,
    /// Geomean of region scheduling (region scope, squash hardware).
    pub region_squash: f64,
    /// Geomean of trace predicating (trace scope, buffering hardware).
    pub trace_buffered: f64,
    /// Geomean of region predicating (region scope, buffering hardware).
    pub region_buffered: f64,
}

impl ToJson for InteractionResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trace_squash", self.trace_squash.to_json()),
            ("region_squash", self.region_squash.to_json()),
            ("trace_buffered", self.trace_buffered.to_json()),
            ("region_buffered", self.region_buffered.to_json()),
        ])
    }
}

impl InteractionResult {
    /// What the wider scope buys under each hardware model.
    pub fn scope_gain(&self) -> (f64, f64) {
        (
            self.region_squash / self.trace_squash,
            self.region_buffered / self.trace_buffered,
        )
    }

    /// What the buffering hardware buys under each scope.
    pub fn hardware_gain(&self) -> (f64, f64) {
        (
            self.trace_buffered / self.trace_squash,
            self.region_buffered / self.region_squash,
        )
    }
}

/// The paper's central argument as a 2×2: scheduling scope (trace vs
/// region) crossed with side-effect hardware (pipeline squashing vs
/// predicated state buffering).  Section 4.1: "the additional scheduling
/// ability is not beneficial" with squashing hardware only — the win
/// appears when unconstrained motion and buffering are combined.
pub fn interaction(params: &EvalParams) -> InteractionResult {
    let cache = ArtifactCache::new();
    let geo = |model: Model| {
        let sp = parallel_map(&BENCHMARKS, params.jobs, |n| {
            run_workload(n, &[model], params, &cache).models[0].speedup
        });
        geometric_mean(&sp)
    };
    InteractionResult {
        trace_squash: geo(Model::Trace),
        region_squash: geo(Model::RegionSquash),
        trace_buffered: geo(Model::TracePred),
        region_buffered: geo(Model::RegionPred),
    }
}

/// One row of the dynamic instruction-mix report.
#[derive(Clone, PartialEq, Debug)]
pub struct MixRow {
    /// Benchmark name.
    pub name: String,
    /// Fraction of dynamic instructions that are loads.
    pub loads: f64,
    /// Fraction that are stores.
    pub stores: f64,
    /// Fraction that are conditional branches.
    pub branches: f64,
    /// Fraction that are unconditional jumps.
    pub jumps: f64,
}

impl ToJson for MixRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("loads", self.loads.to_json()),
            ("stores", self.stores.to_json()),
            ("branches", self.branches.to_json()),
            ("jumps", self.jumps.to_json()),
        ])
    }
}

/// Dynamic instruction mix of the kernels — the realism check behind the
/// Table 2 substitution: integer codes of the paper's era run roughly
/// 15–30% loads, 5–15% stores and 10–20% branches.
pub fn mix(params: &EvalParams) -> Vec<MixRow> {
    parallel_map(&BENCHMARKS, params.jobs, |name| {
        let w = psb_workloads::by_name(name, params.eval_seed, params.size).unwrap();
        let r = run_scalar(&w);
        let total = r.dyn_instrs.max(1) as f64;
        MixRow {
            name: name.to_string(),
            loads: r.dyn_loads as f64 / total,
            stores: r.dyn_stores as f64 / total,
            branches: r.dyn_branches as f64 / total,
            jumps: r.dyn_jumps as f64 / total,
        }
    })
}

/// The one-table summary: every model's speedup on every benchmark
/// (Figures 6 and 7 combined).
pub fn summary(params: &EvalParams) -> FigureResult {
    figure(&Model::ALL, params)
}

/// One row of the timing-sensitivity sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct SensitivityRow {
    /// What was varied (e.g. `jump penalty = 2`).
    pub setting: String,
    /// Geomean speedups for (trace-pred, region-pred).
    pub trace_pred: f64,
    /// Region-predicating geomean.
    pub region_pred: f64,
}

impl ToJson for SensitivityRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("setting", self.setting.to_json()),
            ("trace_pred", self.trace_pred.to_json()),
            ("region_pred", self.region_pred.to_json()),
        ])
    }
}

/// Robustness of the headline conclusion to the timing assumptions the
/// paper leaves open: taken-jump penalty (the BTB assumption) and the
/// store-buffer capacity.  The orderings of Figure 7 survive every
/// setting — both predicating models degrade with the jump penalty (it
/// taxes every region transfer) and neither is store-buffer bound at the
/// paper's 16 entries.
pub fn sensitivity(params: &EvalParams) -> Vec<SensitivityRow> {
    // One cache across every setting: the jump-penalty and store-buffer
    // sweeps vary only machine parameters, so all their rows share the
    // same artifacts and only the first row compiles.
    let cache = ArtifactCache::new();
    let mut rows = Vec::new();
    let mut measure = |setting: String, p: &EvalParams| {
        let geo = |model: Model| {
            let sp = parallel_map(&BENCHMARKS, params.jobs, |n| {
                run_workload(n, &[model], p, &cache).models[0].speedup
            });
            geometric_mean(&sp)
        };
        rows.push(SensitivityRow {
            setting,
            trace_pred: geo(Model::TracePred),
            region_pred: geo(Model::RegionPred),
        });
    };
    for penalty in [0u64, 1, 2] {
        let p = EvalParams {
            jump_penalty: penalty,
            ..params.clone()
        };
        measure(format!("taken-jump penalty = {penalty}"), &p);
    }
    for buf in [2usize, 4, 16] {
        let p = EvalParams {
            store_buffer: buf,
            ..params.clone()
        };
        measure(format!("store buffer = {buf} entries"), &p);
    }
    rows
}

/// One row of the code-size report.
#[derive(Clone, PartialEq, Debug)]
pub struct CodeSizeRow {
    /// Benchmark name.
    pub name: String,
    /// Scalar static instruction count.
    pub scalar_ops: usize,
    /// Static VLIW operations per model, in [`Model::ALL`] order.
    pub per_model: Vec<usize>,
    /// Expansion ratio per model.
    pub expansion: Vec<f64>,
}

impl ToJson for CodeSizeRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("scalar_ops", self.scalar_ops.to_json()),
            ("per_model", self.per_model.to_json()),
            ("expansion", self.expansion.to_json()),
        ])
    }
}

/// Static code size per model — the cost side of the paper's trade-offs:
/// renaming copies (linear models), condition-sets and duplicated join
/// blocks (predicated models), and boosting's extra branches.
pub fn code_size(params: &EvalParams) -> Vec<CodeSizeRow> {
    use psb_sched::SchedConfig;
    let cache = ArtifactCache::new();
    parallel_map(&BENCHMARKS, params.jobs, |name| {
        let train = psb_workloads::by_name(name, params.train_seed, params.size).unwrap();
        let eval = psb_workloads::by_name(name, params.eval_seed, params.size).unwrap();
        let mut per_model = Vec::new();
        let mut expansion = Vec::new();
        for model in Model::ALL {
            let mut cfg = SchedConfig::new(model);
            cfg.issue_width = params.issue_width;
            cfg.resources = params.resources;
            cfg.num_conds = params.num_conds;
            cfg.depth = params.depth.min(params.num_conds);
            let req = CompileRequest {
                program: &eval.program,
                profile: ProfileSource::Train {
                    program: &train.program,
                    config: ScalarConfig::default(),
                },
                sched: cfg,
            };
            let art = compile(&req, &cache).unwrap();
            per_model.push(art.sched_stats.ops);
            expansion.push(art.sched_stats.expansion_over(&eval.program));
        }
        CodeSizeRow {
            name: name.to_string(),
            scalar_ops: eval.program.static_len(),
            per_model,
            expansion,
        }
    })
}

/// The paper's closing remark on Figure 8: resources beyond four issue
/// slots lie idle without "other compilation techniques which expose more
/// parallelism (e.g. loop unrolling)".  This experiment probes exactly
/// that: region predicating on an 8-issue full-issue machine with K = 8,
/// with the kernels' innermost loops unrolled 3x, letting one region span
/// several former iterations.
pub fn ablation_unroll(params: &EvalParams) -> AblationResult {
    use psb_core::MachineConfig;
    use psb_ir::unroll_loops;
    use psb_scalar::ScalarMachine;
    use psb_sched::SchedConfig;

    let wide = EvalParams {
        issue_width: 8,
        resources: Resources::full_issue(8),
        num_conds: 8,
        depth: 8,
        ..params.clone()
    };
    let cache = ArtifactCache::new();
    let pairs = parallel_map(&BENCHMARKS, params.jobs, |&name| {
        let base = run_workload(name, &[Model::RegionPred], &wide, &cache).models[0].speedup;

        // The unrolled variant: transform both training and evaluation
        // programs before profiling and scheduling.
        let train = psb_workloads::by_name(name, wide.train_seed, wide.size).expect("known");
        let eval = psb_workloads::by_name(name, wide.eval_seed, wide.size).expect("known");
        let train_u = unroll_loops(&train.program, 3);
        let eval_u = unroll_loops(&eval.program, 3);
        let scalar = ScalarMachine::new(&eval_u, ScalarConfig::default())
            .run()
            .unwrap();
        let mut cfg = SchedConfig::new(Model::RegionPred);
        cfg.issue_width = 8;
        cfg.resources = Resources::full_issue(8);
        cfg.num_conds = 8;
        cfg.depth = 8;
        cfg.max_blocks = 32;
        let req = CompileRequest {
            program: &eval_u,
            profile: ProfileSource::Train {
                program: &train_u,
                config: ScalarConfig::default(),
            },
            sched: cfg,
        };
        let art = compile(&req, &cache).unwrap_or_else(|e| panic!("{name}/unrolled: {e}"));
        let mut mc = MachineConfig::full_issue(8);
        mc.store_buffer_size = 32;
        let res = art
            .run(mc)
            .unwrap_or_else(|e| panic!("{name}/unrolled: {e}"));
        assert_eq!(
            res.observable(&eval_u.live_out),
            scalar.observable(&eval_u.live_out),
            "{name}/unrolled diverged"
        );
        // The baseline is still the *original* scalar program's cycles: we
        // measure what unrolling buys the 8-issue machine end to end.
        let orig_scalar = ScalarMachine::new(&eval.program, ScalarConfig::default())
            .run()
            .unwrap();
        (base, orig_scalar.cycles as f64 / res.cycles as f64)
    });
    let (base, variant): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
    AblationResult {
        label: "8-issue region-pred: rolled vs 3x-unrolled loops (Fig. 8 remark)".to_string(),
        benches: BENCHMARKS.iter().map(|s| s.to_string()).collect(),
        geomeans: (geometric_mean(&base), geometric_mean(&variant)),
        base,
        variant,
    }
}
