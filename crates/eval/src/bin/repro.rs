//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [table2|table3|fig6|fig7|fig8|ablation-shadow|ablation-counter|ablation-unroll|metrics|bench|trace|profile|fuzz|serve|loadgen|all]
//!       [--size N] [--quick] [--json] [--jobs N] [--workload W] [--model M] [--out FILE]
//! ```
//!
//! `--jobs N` fans the (workload × config) sweep of each experiment out
//! over N threads.  Results are deterministic: the output (including
//! `--json`, `trace` and `profile`) is byte-identical for every job count.
//!
//! `trace` emits Chrome trace-event JSON (load in Perfetto or
//! `chrome://tracing`); `profile` reports the hardware-counter profile.
//! Both accept `--workload`/`--model` to narrow the default
//! all-benchmarks × region-pred selection, and `--out FILE` to write the
//! output to a file instead of stdout.
//!
//! `fuzz` runs the `psb-fuzz` differential sweep:
//!
//! ```text
//! repro fuzz [--seed S] [--runs N] [--time-budget SECS] [--jobs N]
//!            [--corpus DIR] [--inject-recovery-bug]
//!            [--engine tabled|predecoded|legacy]
//! ```
//!
//! The report (stdout) is byte-identical at any `--jobs` count for a
//! fixed `--runs`; timing goes to stderr.  Failing cases are minimized
//! and written into `--corpus` (default `corpus/regressions`), and the
//! exit status is non-zero if any case failed.
//!
//! `compile` runs the compilation pipeline by itself, reporting per-stage
//! timings, artifact sizes and content hashes, and cache counters:
//!
//! ```text
//! repro compile [--workload W[,W...]] [--model M|all] [--size N]
//!               [--deterministic] [--json] [--jobs N] [--out FILE]
//!               [--store DIR] [--store-max-bytes N]
//! ```
//!
//! With `--store DIR`, compiled artifacts persist into an on-disk store;
//! a later process over the same directory fills from disk instead of
//! recompiling (each row's `source` records which layer answered).
//! `--store-max-bytes N` caps the store's footprint: saves beyond the
//! cap evict the least-recently-used artifacts (hits refresh recency),
//! counted in the report's `store.evictions`.
//!
//! `bench` runs the fixed throughput matrix and emits `BENCH.json`:
//!
//! ```text
//! repro bench [--quick] [--deterministic] [--memory SPEC]
//!             [--engine tabled|predecoded|legacy|both|all]
//!             [--check BASELINE.json] [--cache-check] [--tolerance FRAC]
//!             [--jobs N] [--target-cycles N] [--out FILE]
//! ```
//!
//! `--memory SPEC` selects the timing model every point runs under:
//! `perfect` (default), `fixed:LOAD:FETCH`, or `cache[:I:D]` with each
//! cache side a `SETSxWAYSxLINExHITxMISS` spec or `off`.  The model is
//! stamped into the report and `--check` hard-fails on a mismatch, so a
//! cache-model run can never be compared against a perfect baseline.
//!
//! `--cache-check` (requires `--deterministic`) runs the matrix twice
//! against one shared artifact cache and fails unless the second pass is
//! served entirely from cache with a byte-identical report.
//!
//! The JSON goes to `--out` (or stdout); a human summary goes to stderr.
//! With `--check`, deterministic drift or schema breakage against the
//! baseline exits 1, wall-time drift beyond `--tolerance` (default 0.2)
//! prints GitHub `::warning` annotations and still exits 0.
//! `--deterministic` zeroes every host-dependent field (also honoured by
//! `metrics`), so CI can byte-compare two runs.
//!
//! `sweep` explores a machine-configuration grid of one compiled
//! artifact per (kernel × model) pair on the batched lockstep engine
//! (see DESIGN.md §15), measuring the aggregate speedup over
//! point-at-a-time execution and holding every lane byte-equal to its
//! solo run:
//!
//! ```text
//! repro sweep [--quick] [--deterministic] [--jobs N]
//!             [--grid "dim=v1,v2;..."] [--batch-width N]
//!             [--check BASELINE.json] [--tolerance FRAC] [--out FILE]
//! ```
//!
//! Grid dimensions: `kernel`, `model`, `width`, `sb`, `scan`,
//! `latency`, `icache`, `dcache`, `batch` — unnamed dimensions keep the
//! quick/full defaults.  `icache`/`dcache` values are cache specs or
//! `off` (both off = the perfect-memory timing).  Numeric dimensions
//! also accept ranges: `sb=1..64:pow2` walks powers of two,
//! `latency=1..8` walks every value.  The JSON report (`psb-sweep-v1`)
//! is byte-identical at any `--jobs`; `--deterministic` zeroes the wall
//! timings and speedup so CI can `cmp` runs and gate counters against
//! `baselines/sweep_baseline.json`.
//!
//! `serve` exposes the simulator as a service (see DESIGN.md §14):
//!
//! ```text
//! repro serve [--addr HOST:PORT] [--jobs N] [--queue-depth N]
//!             [--cycle-budget N] [--store DIR] [--store-max-bytes N]
//!             [--read-timeout-ms MS] [--deterministic]
//! ```
//!
//! `--read-timeout-ms MS` (default 10000) bounds how long a keep-alive
//! connection may sit silent before the server drops it (counted in
//! `serve.read_timeouts`), so stalled clients can't pin worker threads.
//!
//! `loadgen` drives a running server with a deterministic request mix
//! and reports latency percentiles and the cache hit rate:
//!
//! ```text
//! repro loadgen [--addr HOST:PORT] [--requests N] [--jobs N]
//!               [--seed S] [--deterministic] [--out FILE]
//! ```
//!
//! `--telemetry [FILE]` (on `bench`, `compile`, and `fuzz`) records
//! host-side instrumentation — compile stage spans, cache lock/wait
//! histograms, worker-pool task spans — and writes a merged host+guest
//! Chrome trace to FILE (default `telemetry.json`; load in Perfetto)
//! plus a percentile report to `FILE.report.json`.  The path operand is
//! optional: the next token is consumed only if it doesn't start with
//! `-`, so put the subcommand before the flag.  Combined with
//! `--deterministic`, wall-derived values are zeroed and host-only
//! records dropped, making both files byte-identical at any `--jobs`.

use psb_compile::{ArtifactCache, DiskStore};
use psb_eval::{
    ablation_counter, ablation_shadow, ablation_unroll, cache_effectiveness_check,
    cache_effectiveness_check_t, check_report, check_sweep, chrome_trace, code_size,
    collect_profiles, collect_traces, compile_sweep, compile_sweep_stored, fig6, fig7, fig8,
    interaction, measure_metrics, merged_chrome_trace, mix, obs_points, parse_grid,
    record_cache_stats, render_ablation, render_bench, render_code_size, render_compile,
    render_fig8, render_figure, render_interaction, render_mix, render_profile, render_sensitivity,
    render_sweep, render_table2, render_table3, render_telemetry, run_bench,
    run_bench_with_cache_t, run_fuzz, run_fuzz_t, run_sweep, sensitivity, summary, table2, table3,
    telemetry_report_json, to_json_pretty, BenchParams, Cli, FuzzParams, Json, RunTrace, SweepGrid,
    SweepParams,
};
use psb_serve::{render_report, run_loadgen, serve, LoadgenConfig, ServeConfig};
use psb_telemetry::{NullTelemetry, Recorder};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = Cli::parse(&args).unwrap_or_else(|e| die(&e));
    let Cli {
        what,
        params,
        fuzz_params,
        bench_params,
        json,
        deterministic,
        check,
        cache_check,
        tolerance,
        workloads,
        models,
        out,
        telemetry,
        addr,
        queue_depth,
        cycle_budget,
        store,
        requests,
        grid,
        batch_width,
        memory,
        store_max_bytes,
        read_timeout_ms,
    } = cli;
    // `--memory` applies to every experiment that runs the machine;
    // absent means the paper's perfect-memory timing.
    let params = {
        let mut p = params;
        if let Some(m) = memory {
            p.memory = m;
        }
        p
    };

    let emit = |text: String| match &out {
        Some(path) => {
            std::fs::write(path, text).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")))
        }
        None => print!("{text}"),
    };

    let run = |name: &str| {
        match name {
            "table2" => {
                let t = table2(&params);
                if json {
                    println!("{}", to_json_pretty(&t));
                } else {
                    print!("{}", render_table2(&t));
                }
            }
            "table3" => {
                let t = table3(&params);
                if json {
                    println!("{}", to_json_pretty(&t));
                } else {
                    print!("{}", render_table3(&t));
                }
            }
            "fig6" => {
                let f = fig6(&params);
                if json {
                    println!("{}", to_json_pretty(&f));
                } else {
                    print!("{}", render_figure("Figure 6 (restricted speculation)", &f));
                }
            }
            "fig7" => {
                let f = fig7(&params);
                if json {
                    println!("{}", to_json_pretty(&f));
                } else {
                    print!(
                        "{}",
                        render_figure("Figure 7 (predicating vs conventional)", &f)
                    );
                }
            }
            "fig8" => {
                let f = fig8(&params);
                if json {
                    println!("{}", to_json_pretty(&f));
                } else {
                    print!("{}", render_fig8(&f));
                }
            }
            "ablation-shadow" => {
                let a = ablation_shadow(&params);
                if json {
                    println!("{}", to_json_pretty(&a));
                } else {
                    print!("{}", render_ablation(&a));
                }
            }
            "ablation-counter" => {
                let a = ablation_counter(&params);
                if json {
                    println!("{}", to_json_pretty(&a));
                } else {
                    print!("{}", render_ablation(&a));
                }
            }
            "interaction" => {
                let r = interaction(&params);
                if json {
                    println!("{}", to_json_pretty(&r));
                } else {
                    print!("{}", render_interaction(&r));
                }
            }
            "summary" => {
                let f = summary(&params);
                if json {
                    println!("{}", to_json_pretty(&f));
                } else {
                    print!("{}", render_figure("Summary (all seven models)", &f));
                }
            }
            "mix" => {
                let t = mix(&params);
                if json {
                    println!("{}", to_json_pretty(&t));
                } else {
                    print!("{}", render_mix(&t));
                }
            }
            "sensitivity" => {
                let t = sensitivity(&params);
                if json {
                    println!("{}", to_json_pretty(&t));
                } else {
                    print!("{}", render_sensitivity(&t));
                }
            }
            "codesize" => {
                let t = code_size(&params);
                if json {
                    println!("{}", to_json_pretty(&t));
                } else {
                    let names: Vec<&str> = psb_sched::Model::ALL.iter().map(|m| m.name()).collect();
                    print!("{}", render_code_size(&t, &names));
                }
            }
            "ablation-unroll" => {
                let a = ablation_unroll(&params);
                if json {
                    println!("{}", to_json_pretty(&a));
                } else {
                    print!("{}", render_ablation(&a));
                }
            }
            "metrics" => {
                let mut m = measure_metrics(&psb_sched::Model::ALL, &params);
                if deterministic {
                    for row in &mut m {
                        row.zero_host();
                    }
                }
                if json {
                    println!("{}", to_json_pretty(&m));
                } else {
                    print!("{}", psb_eval::render_metrics(&m));
                }
            }
            "compile" => {
                let disk = store.as_ref().map(|dir| {
                    DiskStore::open_with_limit(dir, store_max_bytes)
                        .unwrap_or_else(|e| die(&format!("--store {dir}: {e}")))
                });
                let tel = telemetry.as_ref().map(|_| Recorder::new(deterministic));
                let mut sweep = match (&tel, &disk) {
                    (Some(rec), _) => {
                        compile_sweep_stored(&workloads, &models, &params, disk.as_ref(), rec)
                    }
                    (None, Some(_)) => compile_sweep_stored(
                        &workloads,
                        &models,
                        &params,
                        disk.as_ref(),
                        &NullTelemetry,
                    ),
                    (None, None) => compile_sweep(&workloads, &models, &params),
                };
                if deterministic {
                    sweep.zero_host();
                }
                eprint!("{}", render_compile(&sweep));
                if let Some(st) = &sweep.store {
                    eprintln!(
                        "store: {} hit(s), {} miss(es), {} write(s), {} error(s), {} eviction(s)",
                        st.hits, st.misses, st.writes, st.errors, st.evictions
                    );
                }
                if json {
                    emit(format!("{}\n", to_json_pretty(&sweep)));
                }
                if let (Some(path), Some(rec)) = (&telemetry, &tel) {
                    record_cache_stats(rec, &sweep.cache);
                    emit_telemetry(path, rec, &[]);
                }
            }
            "bench" => {
                let bp = BenchParams {
                    deterministic,
                    jobs: params.jobs,
                    memory: memory.unwrap_or_default(),
                    ..bench_params.clone()
                };
                let mut failed = false;
                let tel = telemetry.as_ref().map(|_| Recorder::new(deterministic));
                let mut guests: Vec<RunTrace> = Vec::new();
                let report = if cache_check {
                    if !deterministic {
                        die(
                            "--cache-check requires --deterministic (the byte comparison \
                             is only meaningful with host timings zeroed)",
                        );
                    }
                    let cc = match &tel {
                        Some(rec) => cache_effectiveness_check_t(&bp, rec),
                        None => cache_effectiveness_check(&bp),
                    };
                    for problem in &cc.problems {
                        eprintln!("FAIL: cache check: {problem}");
                        failed = true;
                    }
                    eprintln!(
                        "cache check: first pass {} miss(es), second pass +{} hit(s), \
                         +{} miss(es): {}",
                        cc.first_pass.misses,
                        cc.second_pass.hits - cc.first_pass.hits,
                        cc.second_pass.misses - cc.first_pass.misses,
                        if cc.problems.is_empty() {
                            "ok"
                        } else {
                            "FAILED"
                        }
                    );
                    let s = &cc.second_pass;
                    eprintln!(
                        "cache after both passes: {} hit(s), {} miss(es), {} entrie(s), \
                         {} eviction(s), {} profile run(s)",
                        s.hits, s.misses, s.entries, s.evictions, s.profile_misses
                    );
                    let shards: Vec<String> = s
                        .shards
                        .iter()
                        .enumerate()
                        .map(|(i, sh)| format!("{i}:{}/{}/{}", sh.hits, sh.misses, sh.entries))
                        .collect();
                    eprintln!("cache shards (hits/misses/entries): {}", shards.join(" "));
                    if let Some(rec) = &tel {
                        record_cache_stats(rec, &cc.second_pass);
                    }
                    cc.report
                } else {
                    match &tel {
                        Some(rec) => {
                            let cache = ArtifactCache::new();
                            let (report, g) = run_bench_with_cache_t(&bp, &cache, rec, true);
                            record_cache_stats(rec, &cache.stats());
                            guests = g;
                            report
                        }
                        None => run_bench(&bp),
                    }
                };
                eprint!("{}", render_bench(&report));
                if let Some(path) = &check {
                    let text = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
                    let baseline = Json::parse(&text)
                        .unwrap_or_else(|e| die(&format!("{path}: bad baseline JSON: {e}")));
                    let outcome = check_report(&report, &baseline, tolerance);
                    // GitHub Actions reads workflow commands from stdout.
                    for warning in &outcome.warnings {
                        println!("::warning title=bench regression::{warning}");
                    }
                    // Notes, failures and the verdict — every line names
                    // the baseline file, failures included.
                    eprint!("{}", outcome.render(path));
                    if !outcome.passed() {
                        failed = true;
                    }
                }
                emit(format!("{}\n", to_json_pretty(&report)));
                if let (Some(path), Some(rec)) = (&telemetry, &tel) {
                    emit_telemetry(path, rec, &guests);
                }
                if failed {
                    std::process::exit(1);
                }
            }
            "sweep" => {
                let base = if bench_params.quick {
                    SweepGrid::quick()
                } else {
                    SweepGrid::full()
                };
                let mut g = match &grid {
                    Some(spec) => parse_grid(spec, base).unwrap_or_else(|e| die(&e)),
                    None => base,
                };
                if let Some(b) = batch_width {
                    g.batch_width = b;
                }
                let sp = SweepParams {
                    quick: bench_params.quick,
                    deterministic,
                    jobs: params.jobs,
                    grid: g,
                };
                let report = run_sweep(&sp);
                eprint!("{}", render_sweep(&report));
                let mut failed = false;
                if let Some(path) = &check {
                    let text = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
                    let baseline = Json::parse(&text)
                        .unwrap_or_else(|e| die(&format!("{path}: bad baseline JSON: {e}")));
                    let outcome = check_sweep(&report, &baseline, tolerance);
                    for warning in &outcome.warnings {
                        println!("::warning title=sweep regression::{warning}");
                    }
                    eprint!("{}", outcome.render(path));
                    if !outcome.passed() {
                        failed = true;
                    }
                }
                emit(format!("{}\n", to_json_pretty(&report)));
                if failed {
                    std::process::exit(1);
                }
            }
            "trace" => {
                let points = obs_points(&workloads, &models);
                if points.is_empty() {
                    die("no run points selected");
                }
                let traces = collect_traces(&points, &params);
                emit(format!("{}\n", chrome_trace(&traces).pretty()));
            }
            "profile" => {
                let points = obs_points(&workloads, &models);
                if points.is_empty() {
                    die("no run points selected");
                }
                let profiles = collect_profiles(&points, &params);
                if json {
                    emit(format!("{}\n", to_json_pretty(&profiles)));
                } else {
                    emit(render_profile(&profiles));
                }
            }
            "fuzz" => {
                let p = FuzzParams {
                    jobs: params.jobs,
                    ..fuzz_params.clone()
                };
                let tel = telemetry.as_ref().map(|_| Recorder::new(deterministic));
                let outcome = match &tel {
                    Some(rec) => run_fuzz_t(&p, rec),
                    None => run_fuzz(&p),
                };
                print!("{}", outcome.report);
                if let (Some(path), Some(rec)) = (&telemetry, &tel) {
                    emit_telemetry(path, rec, &[]);
                }
                if outcome.failures > 0 {
                    std::process::exit(1);
                }
            }
            "serve" => {
                let config = ServeConfig {
                    addr: addr.clone().unwrap_or_else(|| "127.0.0.1:8080".to_string()),
                    jobs: params.jobs,
                    queue_depth,
                    cycle_budget,
                    store: store.clone().map(Into::into),
                    store_max_bytes,
                    read_timeout_ms,
                    deterministic,
                };
                let handle = serve(config).unwrap_or_else(|e| die(&e));
                eprintln!("repro serve: listening on http://{}", handle.addr());
                eprintln!("repro serve: GET /healthz | GET /metrics | POST /run | POST /compile");
                // Serve until killed; workers own the listener.
                loop {
                    std::thread::park();
                }
            }
            "loadgen" => {
                let config = LoadgenConfig {
                    addr: addr.clone().unwrap_or_else(|| "127.0.0.1:8080".to_string()),
                    requests,
                    jobs: params.jobs,
                    seed: fuzz_params.seed,
                    deterministic,
                };
                let report = run_loadgen(&config).unwrap_or_else(|e| die(&e));
                let failed = report
                    .get("failed")
                    .and_then(|f| f.as_i64())
                    .unwrap_or(i64::MAX);
                eprint!("{}", render_report(&report));
                emit(format!("{}\n", report.pretty()));
                if failed > 0 {
                    eprintln!("repro loadgen: {failed} failed request(s)");
                    std::process::exit(1);
                }
            }
            other => die(&format!("unknown experiment {other}")),
        }
        println!();
    };

    if what == "all" {
        for name in [
            "table2",
            "table3",
            "fig6",
            "fig7",
            "fig8",
            "summary",
            "interaction",
            "mix",
            "codesize",
            "sensitivity",
            "ablation-shadow",
            "ablation-counter",
            "ablation-unroll",
        ] {
            run(name);
        }
    } else {
        run(&what);
    }
}

/// Writes the `--telemetry` outputs: the merged host+guest Chrome trace
/// to `path`, the percentile report to `{path}.report.json`, and a text
/// summary to stderr.
fn emit_telemetry(path: &str, rec: &Recorder, guests: &[RunTrace]) {
    let report = rec.report();
    let trace = merged_chrome_trace(&report, guests);
    std::fs::write(path, format!("{}\n", trace.pretty()))
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    let report_path = format!("{path}.report.json");
    std::fs::write(
        &report_path,
        format!("{}\n", telemetry_report_json(&report).pretty()),
    )
    .unwrap_or_else(|e| die(&format!("cannot write {report_path}: {e}")));
    eprint!("{}", render_telemetry(&report));
    eprintln!("telemetry: merged trace -> {path}, report -> {report_path}");
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!(
        "usage: repro [table2|table3|fig6|fig7|fig8|ablation-shadow|ablation-counter|ablation-unroll|metrics|compile|bench|sweep|trace|profile|fuzz|serve|loadgen|all] \
         [--size N] [--quick] [--json] [--jobs N] [--train-seed S] [--eval-seed S] \
         [--workload W[,W...]] [--model M|all] [--out FILE] [--deterministic] \
         [--engine tabled|predecoded|legacy|both|all] [--check BASELINE.json] [--cache-check] [--tolerance FRAC] \
         [--target-cycles N] [--telemetry [FILE]] [--grid \"dim=v1,v2;...\"] [--batch-width N] \
         [--seed S] [--runs N] [--time-budget SECS] [--corpus DIR] [--inject-recovery-bug] \
         [--memory perfect|fixed:LOAD:FETCH|cache[:I:D]] \
         [--addr HOST:PORT] [--queue-depth N] [--cycle-budget N] [--store DIR] \
         [--store-max-bytes N] [--read-timeout-ms MS] [--requests N]"
    );
    std::process::exit(2);
}
