//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 4).
//!
//! The methodology mirrors the paper's: the scalar reference machine
//! (standing in for the R3000 + `pixie`) supplies the baseline cycle
//! counts and the training profile; each scheduling model compiles the
//! same kernels for the VLIW machine; speedup is total scalar cycles
//! divided by total VLIW cycles, and the headline numbers are geometric
//! means across the six benchmarks.
//!
//! Every run also cross-checks the VLIW observable state against the
//! scalar golden model, so a reported speedup can never come from
//! incorrect code.
//!
//! | Experiment | Paper | Entry point |
//! |---|---|---|
//! | Benchmark inventory | Table 2 | [`table2`] |
//! | Successive-branch prediction accuracy | Table 3 | [`table3`] |
//! | Restricted speculation models | Figure 6 | [`fig6`] |
//! | Predicating vs conventional models | Figure 7 | [`fig7`] |
//! | Full-issue machines × speculation depth | Figure 8 | [`fig8`] |
//! | Single vs infinite shadow registers | footnote 1 | [`ablation_shadow`] |
//! | Vector vs counter predicate form | §4.2.1 | [`ablation_counter`] |

#![warn(missing_docs)]

mod bench;
mod cli;
mod compile_cmd;
mod experiments;
mod fuzz;
mod render;
mod runner;
mod sweep;
mod telemetry_export;
mod trace;

/// The shared JSON document model, promoted to `psb-serve` so the
/// server decodes requests with the same parser the harness uses to
/// emit and check reports (`crate::json::` paths keep working).
pub use psb_serve::json;

pub use bench::{
    cache_effectiveness_check, cache_effectiveness_check_t, check_report, engine_name,
    parse_engines, render_bench, run_bench, run_bench_with_cache, run_bench_with_cache_t,
    BenchCheck, BenchParams, BenchPoint, BenchReport, CacheCheck, EngineAggregate, HostSample,
    BENCH_SCHEMA_VERSION, KERNELS,
};
pub use cli::Cli;
pub use compile_cmd::{
    compile_sweep, compile_sweep_stored, compile_sweep_t, render_compile, CompileHost, CompileRow,
    CompileSweep,
};
pub use experiments::{
    ablation_counter, ablation_shadow, ablation_unroll, code_size, fig6, fig7, fig8, interaction,
    mix, sensitivity, summary, table2, table3, AblationResult, CodeSizeRow, Fig8Cell, Fig8Result,
    FigureResult, InteractionResult, MixRow, SensitivityRow, Table2Row, Table3Row,
};
pub use fuzz::{run_fuzz, run_fuzz_t, FuzzOutcome, FuzzParams};
pub use json::{to_json_pretty, Json, ToJson};
pub use render::{
    render_ablation, render_code_size, render_fig8, render_figure, render_interaction,
    render_metrics, render_mix, render_sensitivity, render_table1, render_table2, render_table3,
};
pub use runner::{
    geometric_mean, measure_metrics, parallel_map, parallel_map_t, parse_jobs, run_workload,
    BenchResult, EvalParams, JobsParseError, MetricsHost, ModelResult, RunMetrics, BENCHMARKS,
};
pub use sweep::{
    check_sweep, parse_grid, render_sweep, run_sweep, SweepArtifact, SweepGrid, SweepHost,
    SweepParams, SweepPoint, SweepReport, SWEEP_SCHEMA_VERSION,
};
pub use telemetry_export::{
    cache_stats_json, merged_chrome_trace, record_cache_stats, render_telemetry,
    telemetry_report_json, TELEMETRY_SCHEMA_VERSION,
};
pub use trace::{
    chrome_trace, collect_profiles, collect_traces, obs_points, parse_model, render_profile,
    ObsPoint, RunProfile, RunTrace,
};
