//! Core measurement machinery: run one workload under one model and
//! collect cycle counts, with golden-model cross-checking.

use psb_core::{MachineConfig, ShadowMode, VliwMachine, VliwResult};
use psb_isa::Resources;
use psb_scalar::{RunResult, ScalarConfig, ScalarMachine};
use psb_sched::{schedule, Model, SchedConfig};
use psb_workloads::Workload;
use serde::Serialize;

/// Parameters shared by a whole experiment.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct EvalParams {
    /// Seed for the training input (profile generation).
    pub train_seed: u64,
    /// Seed for the evaluation input (measurement).
    pub eval_seed: u64,
    /// Workload size (input elements).
    pub size: usize,
    /// Machine issue width.
    pub issue_width: usize,
    /// Function-unit counts.
    #[serde(skip)]
    pub resources: Resources,
    /// CCR entries (`K`).
    pub num_conds: usize,
    /// Allowed unresolved conditions at issue (`D`).
    pub depth: usize,
    /// Infinite-shadow ablation flag.
    pub infinite_shadow: bool,
    /// Counter-form predicate ablation flag.
    pub ordered_cond_sets: bool,
    /// Penalty cycles for taken region-exit jumps (the paper's BTB
    /// assumption makes this 0; the sensitivity sweep varies it).
    pub jump_penalty: u64,
    /// Store-buffer capacity.
    pub store_buffer: usize,
}

impl Default for EvalParams {
    fn default() -> EvalParams {
        EvalParams {
            train_seed: 11,
            eval_seed: 1234,
            size: 2048,
            issue_width: 4,
            resources: Resources::paper_base(),
            num_conds: 4,
            depth: 4,
            infinite_shadow: false,
            ordered_cond_sets: false,
            jump_penalty: 0,
            store_buffer: 16,
        }
    }
}

impl EvalParams {
    /// A smaller configuration for fast tests and benches.
    pub fn quick() -> EvalParams {
        EvalParams {
            size: 384,
            ..EvalParams::default()
        }
    }

    fn sched_config(&self, model: Model) -> SchedConfig {
        SchedConfig {
            model,
            issue_width: self.issue_width,
            resources: self.resources,
            num_conds: self.num_conds,
            depth: self.depth.min(self.num_conds),
            max_blocks: 16,
            single_shadow: !self.infinite_shadow,
            ordered_cond_sets: self.ordered_cond_sets,
        }
    }

    fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            issue_width: self.issue_width,
            resources: self.resources,
            shadow_mode: if self.infinite_shadow {
                ShadowMode::Infinite
            } else {
                ShadowMode::Single
            },
            taken_jump_penalty: self.jump_penalty,
            store_buffer_size: self.store_buffer,
            ..MachineConfig::default()
        }
    }
}

/// Result of one (workload, model) measurement.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct ModelResult {
    /// Model name.
    pub model: String,
    /// VLIW cycles on the evaluation input.
    pub vliw_cycles: u64,
    /// Speedup over the scalar machine.
    pub speedup: f64,
    /// Static VLIW code size in operations.
    pub static_ops: usize,
    /// Operations squashed at issue (predicate false).
    pub squashed_ops: u64,
    /// Speculative-exception recoveries taken.
    pub recoveries: u64,
}

/// Result of one workload across several models.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct BenchResult {
    /// Workload name.
    pub name: String,
    /// Static scalar instruction count (Table 2's "lines" analogue).
    pub static_len: usize,
    /// Scalar cycles on the evaluation input (the baseline).
    pub scalar_cycles: u64,
    /// Per-model measurements.
    pub models: Vec<ModelResult>,
}

impl BenchResult {
    /// The speedup of `model`, if measured.
    pub fn speedup_of(&self, model: Model) -> Option<f64> {
        self.models
            .iter()
            .find(|m| m.model == model.name())
            .map(|m| m.speedup)
    }
}

/// Runs the scalar machine on a workload and returns the run result.
///
/// # Panics
///
/// Panics if the kernel faults or exceeds the cycle limit — workload
/// kernels are fault-free by construction.
pub fn run_scalar(w: &Workload) -> RunResult {
    ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap_or_else(|e| panic!("{}: scalar run failed: {e}", w.name))
}

/// Schedules and runs one model over a workload pair, cross-checking the
/// observable state against `scalar` (the golden run on the same
/// evaluation input).
///
/// # Panics
///
/// Panics if scheduling fails, the machine faults, or the result diverges
/// from the golden model — all indicate bugs, not measurement noise.
pub fn run_model(
    train: &Workload,
    eval: &Workload,
    scalar: &RunResult,
    model: Model,
    params: &EvalParams,
) -> (ModelResult, VliwResult) {
    let profile = run_scalar(train).edge_profile;
    let cfg = params.sched_config(model);
    let vliw = schedule(&eval.program, &profile, &cfg)
        .unwrap_or_else(|e| panic!("{}/{model}: scheduling failed: {e}", eval.name));
    let res = VliwMachine::run_program(&vliw, params.machine_config())
        .unwrap_or_else(|e| panic!("{}/{model}: machine error: {e}", eval.name));
    assert_eq!(
        res.observable(&eval.program.live_out),
        scalar.observable(&eval.program.live_out),
        "{}/{model}: diverged from the scalar golden model",
        eval.name
    );
    let speedup = scalar.cycles as f64 / res.cycles as f64;
    (
        ModelResult {
            model: model.name().to_string(),
            vliw_cycles: res.cycles,
            speedup,
            static_ops: vliw.static_ops(),
            squashed_ops: res.ops_squashed,
            recoveries: res.recoveries,
        },
        res,
    )
}

/// Runs `models` over one named workload (training and evaluation inputs
/// from the two seeds).
pub fn run_workload(name: &str, models: &[Model], params: &EvalParams) -> BenchResult {
    let train = psb_workloads::by_name(name, params.train_seed, params.size)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let eval = psb_workloads::by_name(name, params.eval_seed, params.size)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let scalar = run_scalar(&eval);
    let models = models
        .iter()
        .map(|&m| run_model(&train, &eval, &scalar, m, params).0)
        .collect();
    BenchResult {
        name: name.to_string(),
        static_len: eval.program.static_len(),
        scalar_cycles: scalar.cycles,
        models,
    }
}

/// The paper's six benchmark names in Table 2 order.
pub const BENCHMARKS: [&str; 6] = ["compress", "eqntott", "espresso", "grep", "li", "nroff"];

/// Geometric mean of a slice (1.0 for an empty slice).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_one_model_produces_speedup() {
        let params = EvalParams::quick();
        let res = run_workload("grep", &[Model::RegionPred], &params);
        assert_eq!(res.models.len(), 1);
        assert!(
            res.models[0].speedup > 1.0,
            "region predicating must beat scalar"
        );
    }
}
