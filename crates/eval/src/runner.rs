//! Core measurement machinery: run one workload under one model and
//! collect cycle counts, with golden-model cross-checking.

use psb_compile::{compile, ArtifactCache, CompileRequest, ProfileSource};
use psb_core::{MachineConfig, MemoryModel, ShadowMode, VliwResult};
use psb_isa::Resources;
use psb_scalar::{RunResult, ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use psb_telemetry::round_us;
use psb_workloads::Workload;
use std::fmt;

use crate::json::{Json, ToJson};

/// The instrumented worker pool, re-exported from its home in
/// `psb-telemetry` (it moved there so `psb-serve` can batch request
/// execution onto the same pool without depending on the harness).
pub use psb_telemetry::{parallel_map, parallel_map_t};

/// A rejected `--jobs` value: the one typed parse error every `repro`
/// subcommand shares (0 and non-numeric are both invalid — the worker
/// pool has no meaningful "zero threads" mode; pass 1 to run serially).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobsParseError {
    /// The offending command-line token.
    pub value: String,
}

impl fmt::Display for JobsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid --jobs value '{}': expected an integer >= 1",
            self.value
        )
    }
}

impl std::error::Error for JobsParseError {}

/// Parses a `--jobs` argument: any integer >= 1.
///
/// # Errors
///
/// [`JobsParseError`] for non-integers and for 0.
pub fn parse_jobs(value: &str) -> Result<usize, JobsParseError> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(JobsParseError {
            value: value.to_string(),
        }),
    }
}

/// Parameters shared by a whole experiment.
#[derive(Clone, PartialEq, Debug)]
pub struct EvalParams {
    /// Seed for the training input (profile generation).
    pub train_seed: u64,
    /// Seed for the evaluation input (measurement).
    pub eval_seed: u64,
    /// Workload size (input elements).
    pub size: usize,
    /// Machine issue width.
    pub issue_width: usize,
    /// Function-unit counts.
    pub resources: Resources,
    /// CCR entries (`K`).
    pub num_conds: usize,
    /// Allowed unresolved conditions at issue (`D`).
    pub depth: usize,
    /// Infinite-shadow ablation flag.
    pub infinite_shadow: bool,
    /// Counter-form predicate ablation flag.
    pub ordered_cond_sets: bool,
    /// Penalty cycles for taken region-exit jumps (the paper's BTB
    /// assumption makes this 0; the sensitivity sweep varies it).
    pub jump_penalty: u64,
    /// Store-buffer capacity.
    pub store_buffer: usize,
    /// Timing model the measured runs execute under ([`MemoryModel::Perfect`]
    /// reproduces the paper's single-cycle-memory assumption).
    pub memory: MemoryModel,
    /// Worker threads for experiment sweeps (1 = serial).  Simulator-side
    /// only: results are deterministic and identical for every value, so
    /// this field is deliberately excluded from the JSON serialization.
    pub jobs: usize,
}

impl Default for EvalParams {
    fn default() -> EvalParams {
        EvalParams {
            train_seed: 11,
            eval_seed: 1234,
            size: 2048,
            issue_width: 4,
            resources: Resources::paper_base(),
            num_conds: 4,
            depth: 4,
            infinite_shadow: false,
            ordered_cond_sets: false,
            jump_penalty: 0,
            store_buffer: 16,
            memory: MemoryModel::Perfect,
            jobs: 1,
        }
    }
}

impl EvalParams {
    /// A smaller configuration for fast tests and benches.
    pub fn quick() -> EvalParams {
        EvalParams {
            size: 384,
            ..EvalParams::default()
        }
    }

    pub(crate) fn sched_config(&self, model: Model) -> SchedConfig {
        SchedConfig {
            model,
            issue_width: self.issue_width,
            resources: self.resources,
            num_conds: self.num_conds,
            depth: self.depth.min(self.num_conds),
            max_blocks: 16,
            single_shadow: !self.infinite_shadow,
            ordered_cond_sets: self.ordered_cond_sets,
        }
    }

    pub(crate) fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            issue_width: self.issue_width,
            resources: self.resources,
            shadow_mode: if self.infinite_shadow {
                ShadowMode::Infinite
            } else {
                ShadowMode::Single
            },
            taken_jump_penalty: self.jump_penalty,
            store_buffer_size: self.store_buffer,
            memory: self.memory,
            ..MachineConfig::default()
        }
    }
}

impl ToJson for EvalParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("train_seed", self.train_seed.to_json()),
            ("eval_seed", self.eval_seed.to_json()),
            ("size", self.size.to_json()),
            ("issue_width", self.issue_width.to_json()),
            ("num_conds", self.num_conds.to_json()),
            ("depth", self.depth.to_json()),
            ("infinite_shadow", self.infinite_shadow.to_json()),
            ("ordered_cond_sets", self.ordered_cond_sets.to_json()),
            ("jump_penalty", self.jump_penalty.to_json()),
            ("store_buffer", self.store_buffer.to_json()),
            ("memory", Json::Str(self.memory.to_string())),
        ])
    }
}

/// Result of one (workload, model) measurement.
#[derive(Clone, PartialEq, Debug)]
pub struct ModelResult {
    /// Model name.
    pub model: String,
    /// VLIW cycles on the evaluation input.
    pub vliw_cycles: u64,
    /// Speedup over the scalar machine.
    pub speedup: f64,
    /// Static VLIW code size in operations.
    pub static_ops: usize,
    /// Operations squashed at issue (predicate false).
    pub squashed_ops: u64,
    /// Speculative-exception recoveries taken.
    pub recoveries: u64,
    /// Cycles stalled on instruction fetch (zero under perfect memory).
    pub stall_ifetch: u64,
    /// Operand-stall cycles blocked on a D$-missing load.
    pub stall_load_miss: u64,
    /// I$ (accesses, misses) over the run.
    pub icache: (u64, u64),
    /// D$ (accesses, misses) over the run.
    pub dcache: (u64, u64),
}

impl ToJson for ModelResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("model", self.model.to_json()),
            ("vliw_cycles", self.vliw_cycles.to_json()),
            ("speedup", self.speedup.to_json()),
            ("static_ops", self.static_ops.to_json()),
            ("squashed_ops", self.squashed_ops.to_json()),
            ("recoveries", self.recoveries.to_json()),
            ("stall_ifetch", self.stall_ifetch.to_json()),
            ("stall_load_miss", self.stall_load_miss.to_json()),
            ("icache_accesses", self.icache.0.to_json()),
            ("icache_misses", self.icache.1.to_json()),
            ("dcache_accesses", self.dcache.0.to_json()),
            ("dcache_misses", self.dcache.1.to_json()),
        ])
    }
}

/// Result of one workload across several models.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchResult {
    /// Workload name.
    pub name: String,
    /// Static scalar instruction count (Table 2's "lines" analogue).
    pub static_len: usize,
    /// Scalar cycles on the evaluation input (the baseline).
    pub scalar_cycles: u64,
    /// Per-model measurements.
    pub models: Vec<ModelResult>,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("static_len", self.static_len.to_json()),
            ("scalar_cycles", self.scalar_cycles.to_json()),
            ("models", self.models.to_json()),
        ])
    }
}

impl BenchResult {
    /// The speedup of `model`, if measured.
    pub fn speedup_of(&self, model: Model) -> Option<f64> {
        self.models
            .iter()
            .find(|m| m.model == model.name())
            .map(|m| m.speedup)
    }
}

/// Runs the scalar machine on a workload and returns the run result.
///
/// # Panics
///
/// Panics if the kernel faults or exceeds the cycle limit — workload
/// kernels are fault-free by construction.
pub fn run_scalar(w: &Workload) -> RunResult {
    ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap_or_else(|e| panic!("{}: scalar run failed: {e}", w.name))
}

/// Compiles and runs one model over a workload pair through the shared
/// artifact cache, cross-checking the observable state against `scalar`
/// (the golden run on the same evaluation input).
///
/// # Panics
///
/// Panics if compilation fails, the machine faults, or the result diverges
/// from the golden model — all indicate bugs, not measurement noise.
pub fn run_model(
    train: &Workload,
    eval: &Workload,
    scalar: &RunResult,
    model: Model,
    params: &EvalParams,
    cache: &ArtifactCache,
) -> (ModelResult, VliwResult) {
    let req = CompileRequest {
        program: &eval.program,
        profile: ProfileSource::Train {
            program: &train.program,
            config: ScalarConfig::default(),
        },
        sched: params.sched_config(model),
    };
    let art = compile(&req, cache)
        .unwrap_or_else(|e| panic!("{}/{model}: compile failed: {e}", eval.name));
    let res = art
        .run(params.machine_config())
        .unwrap_or_else(|e| panic!("{}/{model}: machine error: {e}", eval.name));
    assert_eq!(
        res.observable(&eval.program.live_out),
        scalar.observable(&eval.program.live_out),
        "{}/{model}: diverged from the scalar golden model",
        eval.name
    );
    let speedup = scalar.cycles as f64 / res.cycles as f64;
    (
        ModelResult {
            model: model.name().to_string(),
            vliw_cycles: res.cycles,
            speedup,
            static_ops: art.program.static_ops(),
            squashed_ops: res.ops_squashed,
            recoveries: res.recoveries,
            stall_ifetch: res.stall_ifetch,
            stall_load_miss: res.stall_load_miss,
            icache: (res.icache_accesses, res.icache_misses),
            dcache: (res.dcache_accesses, res.dcache_misses),
        },
        res,
    )
}

/// Runs `models` over one named workload (training and evaluation inputs
/// from the two seeds), compiling through `cache`.
pub fn run_workload(
    name: &str,
    models: &[Model],
    params: &EvalParams,
    cache: &ArtifactCache,
) -> BenchResult {
    let train = psb_workloads::by_name(name, params.train_seed, params.size)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let eval = psb_workloads::by_name(name, params.eval_seed, params.size)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let scalar = run_scalar(&eval);
    let models = models
        .iter()
        .map(|&m| run_model(&train, &eval, &scalar, m, params, cache).0)
        .collect();
    BenchResult {
        name: name.to_string(),
        static_len: eval.program.static_len(),
        scalar_cycles: scalar.cycles,
        models,
    }
}

/// The paper's six benchmark names in Table 2 order.
pub const BENCHMARKS: [&str; 6] = ["compress", "eqntott", "espresso", "grep", "li", "nroff"];

/// Host-dependent timing of one metrics run, grouped so `--deterministic`
/// can zero it out wholesale and leave the rest of the record
/// byte-comparable across hosts and runs.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MetricsHost {
    /// Wall-clock seconds for the VLIW simulation (schedule + profile
    /// excluded), rounded to microsecond precision so serialized metrics
    /// diff cleanly between runs.
    pub wall_seconds: f64,
}

/// Simulator-throughput metrics for one (workload, model) run.
///
/// Unlike the experiment results, these include wall-clock timing, so they
/// vary run to run and are reported by a dedicated `repro metrics`
/// subcommand rather than mixed into the comparable experiment JSON.
/// Every host-dependent value lives under [`RunMetrics::host`]; the
/// remaining fields are deterministic.
#[derive(Clone, PartialEq, Debug)]
pub struct RunMetrics {
    /// Workload name.
    pub workload: String,
    /// Scheduling model.
    pub model: String,
    /// Simulated machine cycles.
    pub cycles: u64,
    /// Buffered speculative entries committed into sequential state.
    pub commits: u64,
    /// Buffered speculative entries squashed.
    pub squashes: u64,
    /// Speculative-exception recoveries taken.
    pub recoveries: u64,
    /// Host-dependent timing (zeroed by `--deterministic`).
    pub host: MetricsHost,
}

impl RunMetrics {
    /// Simulated cycles per wall-clock second — always derived from the
    /// stored (rounded) wall time, never carried as a separate field, so
    /// the two can't disagree.
    pub fn cycles_per_second(&self) -> f64 {
        self.cycles as f64 / self.host.wall_seconds.max(1e-9)
    }

    /// Zeroes the host-dependent sub-object (the `--deterministic`
    /// contract used by CI `cmp` steps).
    pub fn zero_host(&mut self) {
        self.host = MetricsHost::default();
    }
}

impl ToJson for RunMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", self.workload.to_json()),
            ("model", self.model.to_json()),
            ("cycles", self.cycles.to_json()),
            ("commits", self.commits.to_json()),
            ("squashes", self.squashes.to_json()),
            ("recoveries", self.recoveries.to_json()),
            (
                "host",
                Json::obj(vec![
                    ("wall_seconds", self.host.wall_seconds.to_json()),
                    ("cycles_per_second", self.cycles_per_second().to_json()),
                ]),
            ),
        ])
    }
}

/// Times the VLIW simulation of every (benchmark × model) point and
/// reports per-run [`RunMetrics`], fanned out over `params.jobs` threads.
pub fn measure_metrics(models: &[Model], params: &EvalParams) -> Vec<RunMetrics> {
    let points: Vec<(&str, Model)> = BENCHMARKS
        .iter()
        .flat_map(|&n| models.iter().map(move |&m| (n, m)))
        .collect();
    let cache = ArtifactCache::new();
    parallel_map(&points, params.jobs, |&(name, model)| {
        let train = psb_workloads::by_name(name, params.train_seed, params.size)
            .unwrap_or_else(|| panic!("unknown workload {name}"));
        let eval = psb_workloads::by_name(name, params.eval_seed, params.size)
            .unwrap_or_else(|| panic!("unknown workload {name}"));
        let scalar = run_scalar(&eval);
        let req = CompileRequest {
            program: &eval.program,
            profile: ProfileSource::Train {
                program: &train.program,
                config: ScalarConfig::default(),
            },
            sched: params.sched_config(model),
        };
        let art =
            compile(&req, &cache).unwrap_or_else(|e| panic!("{name}/{model}: compile failed: {e}"));
        let start = std::time::Instant::now();
        let res = art
            .run(params.machine_config())
            .unwrap_or_else(|e| panic!("{name}/{model}: machine error: {e}"));
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            res.observable(&eval.program.live_out),
            scalar.observable(&eval.program.live_out),
            "{name}/{model}: diverged from the scalar golden model"
        );
        RunMetrics {
            workload: name.to_string(),
            model: model.name().to_string(),
            cycles: res.cycles,
            commits: res.commits,
            squashes: res.squashes,
            recoveries: res.recoveries,
            host: MetricsHost {
                wall_seconds: round_us(wall),
            },
        }
    })
}

/// Geometric mean of a slice (1.0 for an empty slice).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_reexport_preserves_order() {
        // The pool's own unit tests live in psb-telemetry; this pins the
        // re-export path the experiment code compiles against.
        let items: Vec<u64> = (0..32).collect();
        let serial = parallel_map(&items, 1, |&x| x * x);
        assert_eq!(parallel_map(&items, 4, |&x| x * x), serial);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_only() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs("32"), Ok(32));
        for bad in ["0", "-1", "", "four", "1.5"] {
            let err = parse_jobs(bad).expect_err(bad);
            assert_eq!(err.value, bad);
            assert!(err.to_string().contains(bad));
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_one_model_produces_speedup() {
        let params = EvalParams::quick();
        let cache = ArtifactCache::new();
        let res = run_workload("grep", &[Model::RegionPred], &params, &cache);
        assert_eq!(res.models.len(), 1);
        assert!(
            res.models[0].speedup > 1.0,
            "region predicating must beat scalar"
        );
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 0));
    }
}
