//! `repro bench` — the simulator-throughput regression pipeline.
//!
//! Runs a *fixed* kernel × workload × model matrix (the four `asm/`
//! kernels plus the six synthetic workloads at pinned sizes), times each
//! phase (profile / schedule / execute), and emits a deterministic-schema
//! `BENCH.json`.  Everything the simulator computes — cycle counts,
//! commit/squash/recovery counters, iteration counts — is deterministic
//! and byte-identical across hosts and `--jobs` values; everything the
//! *host* contributes (wall time, derived throughput, peak RSS) lives in
//! `host` sub-objects that `--deterministic` zeroes out, so CI `cmp`
//! steps can diff two runs byte-for-byte.
//!
//! A checked-in baseline (`baselines/bench_baseline.json`) is compared
//! via [`check_report`]: a missing point, a schema change, or any drift
//! in the deterministic fields is a **hard failure** (the simulator
//! changed behaviour — rebaseline deliberately or fix the bug); wall-time
//! drift beyond the tolerance is a **warning** emitted in GitHub
//! annotation form (`::warning ...`), because shared CI runners make
//! wall time advisory.

use crate::json::{Json, ToJson};
use crate::runner::parallel_map_t;
use crate::trace::RunTrace;
use psb_compile::{compile_with, ArtifactCache, CacheStats, CompileRequest, ProfileSource};
use psb_core::{Engine, MachineConfig, MemoryModel, ShadowMode};
use psb_scalar::ScalarConfig;
use psb_sched::{Model, SchedConfig};
use psb_telemetry::{round_us, NullTelemetry, Telemetry};
use std::path::PathBuf;
use std::time::Instant;

/// Version stamped into `BENCH.json`; bump on any schema change (a
/// version mismatch against the baseline is a hard check failure).
/// v2: compile-phase timings come from `psb_compile::CompileStats`
/// (`host` gains `decode_seconds`; kernel points report
/// `profile_seconds` 0 because their profile is a byproduct of the
/// golden cross-check run).
/// v3: the matrix runs under a configurable memory model (`--memory`):
/// the report gains a top-level `memory` field and every point gains
/// memory-stall and cache-miss counters (all deterministic, all gated).
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// The four checked-in assembly kernels forming the kernel suite.
pub const KERNELS: [&str; 4] = ["dotprod", "gcd", "matmul", "sort"];

/// Models the kernel suite runs under (the two full predicated-buffering
/// pipelines — the paper's mechanism, and the hot path we gate).
const KERNEL_MODELS: [Model; 2] = [Model::TracePred, Model::RegionPred];

/// Models the workload points run under (one squash reference plus the
/// paper's full mechanism).
const WORKLOAD_MODELS: [Model; 2] = [Model::Squash, Model::RegionPred];

/// Parameters of one `repro bench` invocation.
#[derive(Clone, Debug)]
pub struct BenchParams {
    /// Shrink iteration counts and workload sizes for CI (`--quick`).
    pub quick: bool,
    /// Zero every host-dependent field so two runs diff byte-identically.
    pub deterministic: bool,
    /// Engines to measure (each selected engine runs every matrix point).
    pub engines: Vec<Engine>,
    /// Worker threads (1 = serial; >1 distorts per-point wall time, so CI
    /// gating runs serial).
    pub jobs: usize,
    /// Override the per-point simulated-cycle budget (`--target-cycles`).
    /// Meant for schema/determinism tests that need a fast run; throughput
    /// numbers from tiny budgets are timer noise.
    pub target_cycles: Option<u64>,
    /// Memory timing model every matrix point runs under (`--memory`;
    /// default perfect, the paper's machine).  A separate CI baseline
    /// gates the cache-model matrix so the stall machinery stays on the
    /// regression radar.
    pub memory: MemoryModel,
}

impl Default for BenchParams {
    fn default() -> BenchParams {
        BenchParams {
            quick: false,
            deterministic: false,
            engines: vec![Engine::default()],
            jobs: 1,
            target_cycles: None,
            memory: MemoryModel::Perfect,
        }
    }
}

impl BenchParams {
    /// Simulated-cycle budget per kernel point.  Iteration counts are
    /// derived as `ceil(target / cycles)`, which is deterministic because
    /// per-run cycle counts are — small kernels simply repeat more often
    /// until every point accumulates comparable, timer-stable wall time.
    fn kernel_target_cycles(&self) -> u64 {
        self.target_cycles
            .unwrap_or(if self.quick { 500_000 } else { 3_000_000 })
    }

    /// Simulated-cycle budget per workload point.
    fn workload_target_cycles(&self) -> u64 {
        self.target_cycles
            .unwrap_or(if self.quick { 500_000 } else { 2_000_000 })
    }

    fn workload_size(&self) -> usize {
        if self.quick {
            256
        } else {
            1024
        }
    }
}

/// Host-dependent measurements of one point.  All fields are zeroed by
/// `--deterministic`; `wall_seconds` is the execute-phase wall time (the
/// throughput denominator).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct HostSample {
    /// Seconds the pipeline's profile stage spent in the scalar training
    /// run (0 for kernel points, whose profile is a byproduct of the
    /// golden cross-check run, and for cache-served compiles the
    /// original compile's timing).
    pub profile_seconds: f64,
    /// Seconds spent in the scheduler.
    pub schedule_seconds: f64,
    /// Seconds spent lowering the schedule into the pre-decoded arena.
    pub decode_seconds: f64,
    /// Seconds spent simulating (all iterations of the VLIW machine).
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second over the execute phase.
    pub cycles_per_second: f64,
}

impl ToJson for HostSample {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("profile_seconds", self.profile_seconds.to_json()),
            ("schedule_seconds", self.schedule_seconds.to_json()),
            ("decode_seconds", self.decode_seconds.to_json()),
            ("wall_seconds", self.wall_seconds.to_json()),
            ("cycles_per_second", self.cycles_per_second.to_json()),
        ])
    }
}

/// One measured matrix point.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchPoint {
    /// `"kernel"` (an `asm/` program) or `"workload"` (a generated one).
    pub kind: String,
    /// Kernel or workload name.
    pub name: String,
    /// Scheduling model name.
    pub model: String,
    /// Machine engine the point ran on.
    pub engine: String,
    /// Simulation repetitions timed: `ceil(target_cycles / cycles)`.
    /// Deterministic (derived from deterministic cycle counts); repetition
    /// only accumulates wall time, simulated state is identical each time.
    pub iterations: u64,
    /// Simulated cycles of one run — deterministic.
    pub cycles: u64,
    /// Buffered commits of one run — deterministic.
    pub commits: u64,
    /// Buffered squashes of one run — deterministic.
    pub squashes: u64,
    /// Recovery episodes of one run — deterministic.
    pub recoveries: u64,
    /// Fetch-stall cycles of one run — deterministic.
    pub stall_ifetch: u64,
    /// Load-miss stall cycles of one run — deterministic.
    pub stall_load_miss: u64,
    /// I-cache accesses / misses of one run — deterministic (0 without
    /// a cache model).
    pub icache_accesses: u64,
    /// I-cache misses of one run — deterministic.
    pub icache_misses: u64,
    /// D-cache accesses of one run — deterministic.
    pub dcache_accesses: u64,
    /// D-cache misses of one run — deterministic.
    pub dcache_misses: u64,
    /// Host-dependent timing.
    pub host: HostSample,
}

impl ToJson for BenchPoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", self.kind.to_json()),
            ("name", self.name.to_json()),
            ("model", self.model.to_json()),
            ("engine", self.engine.to_json()),
            ("iterations", self.iterations.to_json()),
            ("cycles", self.cycles.to_json()),
            ("commits", self.commits.to_json()),
            ("squashes", self.squashes.to_json()),
            ("recoveries", self.recoveries.to_json()),
            ("stall_ifetch", self.stall_ifetch.to_json()),
            ("stall_load_miss", self.stall_load_miss.to_json()),
            ("icache_accesses", self.icache_accesses.to_json()),
            ("icache_misses", self.icache_misses.to_json()),
            ("dcache_accesses", self.dcache_accesses.to_json()),
            ("dcache_misses", self.dcache_misses.to_json()),
            ("host", self.host.to_json()),
        ])
    }
}

/// Per-engine aggregate over the kernel suite (the ISSUE's headline
/// number: kernel-suite sim cycles per second).
#[derive(Clone, PartialEq, Debug)]
pub struct EngineAggregate {
    /// Engine name.
    pub engine: String,
    /// Total simulated cycles across all kernel iterations.
    pub sim_cycles_total: u64,
    /// Total execute-phase wall seconds (host-dependent).
    pub wall_seconds: f64,
    /// Aggregate throughput (host-dependent).
    pub cycles_per_second: f64,
}

impl ToJson for EngineAggregate {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("engine", self.engine.to_json()),
            ("sim_cycles_total", self.sim_cycles_total.to_json()),
            (
                "host",
                Json::obj(vec![
                    ("wall_seconds", self.wall_seconds.to_json()),
                    ("cycles_per_second", self.cycles_per_second.to_json()),
                ]),
            ),
        ])
    }
}

/// The whole `BENCH.json` document.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchReport {
    /// `"full"` or `"quick"`.
    pub suite: String,
    /// Memory model the matrix ran under (the `--memory` spec; a
    /// mismatch against the baseline is a hard check failure — cache
    /// numbers must never be gated against a perfect-memory baseline).
    pub memory: String,
    /// All measured points, in fixed matrix order.
    pub points: Vec<BenchPoint>,
    /// Kernel-suite throughput per engine.
    pub kernel_suite: Vec<EngineAggregate>,
    /// Total simulated cycles across every point and iteration.
    pub sim_cycles_total: u64,
    /// End-to-end wall seconds of the whole bench run (host-dependent).
    pub wall_seconds_total: f64,
    /// Peak resident set size in kB (`VmHWM`; 0 off-Linux, host-dependent).
    pub peak_rss_kb: u64,
}

impl ToJson for BenchReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", BENCH_SCHEMA_VERSION.to_json()),
            ("suite", self.suite.to_json()),
            ("memory", self.memory.to_json()),
            ("points", self.points.to_json()),
            (
                "totals",
                Json::obj(vec![
                    ("sim_cycles_total", self.sim_cycles_total.to_json()),
                    ("kernel_suite", self.kernel_suite.to_json()),
                    (
                        "host",
                        Json::obj(vec![
                            ("wall_seconds_total", self.wall_seconds_total.to_json()),
                            ("peak_rss_kb", self.peak_rss_kb.to_json()),
                        ]),
                    ),
                ]),
            ),
        ])
    }
}

impl BenchReport {
    /// Zeroes every host-dependent field (the `--deterministic` contract).
    pub fn zero_host(&mut self) {
        for p in &mut self.points {
            p.host = HostSample::default();
        }
        for a in &mut self.kernel_suite {
            a.wall_seconds = 0.0;
            a.cycles_per_second = 0.0;
        }
        self.wall_seconds_total = 0.0;
        self.peak_rss_kb = 0;
    }

    /// The kernel-suite throughput of `engine`, if measured.
    pub fn kernel_cycles_per_second(&self, engine: &str) -> Option<f64> {
        self.kernel_suite
            .iter()
            .find(|a| a.engine == engine)
            .map(|a| a.cycles_per_second)
    }
}

/// One point of the fixed matrix, before measurement.
struct PointSpec {
    kind: &'static str,
    name: String,
    model: Model,
    engine: Engine,
    /// Simulated-cycle budget the execute phase repeats up to.
    target_cycles: u64,
    /// Workload input size (unused for kernels, which have intrinsic
    /// sizes baked into their `.asm`).
    size: usize,
    /// Memory timing model (uniform across the matrix — see
    /// [`BenchParams::memory`]).
    memory: MemoryModel,
}

/// The stable lowercase report name of an engine (`--engine` vocabulary).
pub fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Tabled => "tabled",
        Engine::Predecoded => "predecoded",
        Engine::Legacy => "legacy",
    }
}

/// Parses an `--engine` argument (`tabled`, `predecoded`, `legacy`,
/// `both` — the two interpretive engines — or `all`).
pub fn parse_engines(s: &str) -> Option<Vec<Engine>> {
    match s {
        "tabled" => Some(vec![Engine::Tabled]),
        "predecoded" => Some(vec![Engine::Predecoded]),
        "legacy" => Some(vec![Engine::Legacy]),
        "both" => Some(vec![Engine::Legacy, Engine::Predecoded]),
        "all" => Some(vec![Engine::Legacy, Engine::Predecoded, Engine::Tabled]),
        _ => None,
    }
}

pub(crate) fn asm_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../asm")
}

/// `VmHWM` from `/proc/self/status` in kB; 0 where unavailable.
fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

fn run_point<T: Telemetry>(
    spec: &PointSpec,
    cache: &ArtifactCache,
    tel: &T,
    collect_guest: bool,
) -> (BenchPoint, Option<RunTrace>) {
    let (program, fault_once) = match spec.kind {
        "kernel" => {
            let path = asm_dir().join(format!("{}.asm", spec.name));
            let case = psb_fuzz::load_repro(&path)
                .unwrap_or_else(|e| panic!("bench kernel {}: {e}", spec.name));
            (case.program, case.fault_once)
        }
        _ => {
            let w = psb_workloads::by_name(&spec.name, 1234, spec.size)
                .unwrap_or_else(|| panic!("unknown workload {}", spec.name));
            (w.program, Default::default())
        }
    };

    // Golden scalar run: supplies the observable end state the timed runs
    // are cross-checked against, and (for kernels) doubles as the edge
    // profile — so kernel points report `profile_seconds` 0, the profile
    // being free.  Workloads train inside the pipeline on a distinct
    // seed, like the experiment harness.
    let scfg = ScalarConfig {
        fault_once_addrs: fault_once.clone(),
        ..ScalarConfig::default()
    };
    let scalar = psb_scalar::ScalarMachine::new(&program, scfg)
        .run()
        .unwrap_or_else(|e| panic!("{}: scalar run failed: {e}", spec.name));

    // Compile phase (profile → schedule → decode) through the shared
    // pipeline; per-stage timings come from the artifact's CompileStats.
    let train = (spec.kind != "kernel").then(|| {
        psb_workloads::by_name(&spec.name, 11, spec.size)
            .unwrap_or_else(|| panic!("unknown workload {}", spec.name))
    });
    let sched_cfg = SchedConfig::new(spec.model);
    let single_shadow = sched_cfg.single_shadow;
    let req = CompileRequest {
        program: &program,
        profile: match &train {
            Some(t) => ProfileSource::Train {
                program: &t.program,
                config: ScalarConfig::default(),
            },
            None => ProfileSource::Provided(&scalar.edge_profile),
        },
        sched: sched_cfg,
    };
    let art = compile_with(&req, cache, tel)
        .unwrap_or_else(|e| panic!("{}/{}: compile failed: {e}", spec.name, spec.model));

    // Execute phase: the timed loop.  Every iteration simulates the same
    // deterministic run; the first is cross-checked against the golden
    // model so a throughput number can never come from incorrect code.
    let mcfg = MachineConfig {
        shadow_mode: if single_shadow {
            ShadowMode::Single
        } else {
            ShadowMode::Infinite
        },
        fault_once_addrs: fault_once,
        engine: spec.engine,
        memory: spec.memory,
        ..MachineConfig::default()
    };
    let exec_start = Instant::now();
    let first = art
        .run(mcfg.clone())
        .unwrap_or_else(|e| panic!("{}/{}: machine error: {e}", spec.name, spec.model));
    assert_eq!(
        first.observable(&program.live_out),
        scalar.observable(&program.live_out),
        "{}/{}: diverged from the scalar golden model",
        spec.name,
        spec.model
    );
    let cycles = first.cycles;
    let (commits, squashes, recoveries) = (first.commits, first.squashes, first.recoveries);
    let (stall_ifetch, stall_load_miss) = (first.stall_ifetch, first.stall_load_miss);
    let (icache_accesses, icache_misses) = (first.icache_accesses, first.icache_misses);
    let (dcache_accesses, dcache_misses) = (first.dcache_accesses, first.dcache_misses);
    let iterations = spec.target_cycles.div_ceil(cycles.max(1)).max(1);
    for _ in 1..iterations {
        art.run(mcfg.clone())
            .unwrap_or_else(|e| panic!("{}/{}: machine error: {e}", spec.name, spec.model));
    }
    let wall_seconds = exec_start.elapsed().as_secs_f64();
    tel.observe("bench.execute_ns", (wall_seconds * 1e9) as u64);

    // An extra untimed run with event recording on, for the merged
    // host+guest `--telemetry` timeline.  Only requested for one engine
    // per matrix point — the event stream is engine-independent.
    let guest = collect_guest.then(|| {
        let mut gcfg = mcfg.clone();
        gcfg.record_events = true;
        let res = art
            .run(gcfg)
            .unwrap_or_else(|e| panic!("{}/{}: machine error: {e}", spec.name, spec.model));
        RunTrace {
            workload: spec.name.clone(),
            model: spec.model.name().to_string(),
            cycles: res.cycles,
            events: res.events,
        }
    });

    let point = BenchPoint {
        kind: spec.kind.to_string(),
        name: spec.name.clone(),
        model: spec.model.name().to_string(),
        engine: engine_name(spec.engine).to_string(),
        iterations,
        cycles,
        commits,
        squashes,
        recoveries,
        stall_ifetch,
        stall_load_miss,
        icache_accesses,
        icache_misses,
        dcache_accesses,
        dcache_misses,
        host: HostSample {
            profile_seconds: art.stats.profile_seconds,
            schedule_seconds: art.stats.schedule_seconds,
            decode_seconds: art.stats.decode_seconds,
            wall_seconds: round_us(wall_seconds),
            cycles_per_second: round_us(cycles as f64 * iterations as f64 / wall_seconds.max(1e-9)),
        },
    };
    (point, guest)
}

/// Runs the fixed bench matrix and assembles the report, compiling each
/// point through a private artifact cache.
///
/// # Panics
///
/// Panics on any kernel load, compile, or machine failure, and on golden
/// model divergence — a bench result must never describe broken code.
pub fn run_bench(params: &BenchParams) -> BenchReport {
    run_bench_with_cache(params, &ArtifactCache::new())
}

/// [`run_bench`] against a caller-supplied artifact cache, so repeated
/// runs (the `--cache-check` smoke test) can measure cache effectiveness.
/// Because the compile key excludes the engine and the execution config,
/// an engine sweep compiles each (program × model) point exactly once.
pub fn run_bench_with_cache(params: &BenchParams, cache: &ArtifactCache) -> BenchReport {
    run_bench_with_cache_t(params, cache, &NullTelemetry, false).0
}

/// [`run_bench_with_cache`] with instrumentation: per-point task spans
/// and compile-stage telemetry flow into `tel`, and `collect_guests`
/// additionally records one event-traced guest run per matrix point of
/// the first selected engine (for the merged `--telemetry` timeline).
/// Guest traces come back in fixed matrix order.
pub fn run_bench_with_cache_t<T: Telemetry>(
    params: &BenchParams,
    cache: &ArtifactCache,
    tel: &T,
    collect_guests: bool,
) -> (BenchReport, Vec<RunTrace>) {
    let mut specs = Vec::new();
    for &engine in &params.engines {
        for name in KERNELS {
            for model in KERNEL_MODELS {
                specs.push(PointSpec {
                    kind: "kernel",
                    name: name.to_string(),
                    model,
                    engine,
                    target_cycles: params.kernel_target_cycles(),
                    size: 0,
                    memory: params.memory,
                });
            }
        }
        for name in crate::runner::BENCHMARKS {
            for model in WORKLOAD_MODELS {
                specs.push(PointSpec {
                    kind: "workload",
                    name: name.to_string(),
                    model,
                    engine,
                    target_cycles: params.workload_target_cycles(),
                    size: params.workload_size(),
                    memory: params.memory,
                });
            }
        }
    }

    let start = Instant::now();
    let first_engine = params.engines.first().map(|&e| engine_name(e));
    let results = parallel_map_t(
        &specs,
        params.jobs,
        tel,
        |_, spec| {
            format!(
                "{}/{}/{}",
                spec.name,
                spec.model.name(),
                engine_name(spec.engine)
            )
        },
        |spec| {
            let collect = collect_guests && Some(engine_name(spec.engine)) == first_engine;
            run_point(spec, cache, tel, collect)
        },
    );
    let wall_seconds_total = round_us(start.elapsed().as_secs_f64());
    let mut points = Vec::with_capacity(results.len());
    let mut guests = Vec::new();
    for (p, g) in results {
        points.push(p);
        guests.extend(g);
    }

    let mut kernel_suite = Vec::new();
    for &engine in &params.engines {
        let ename = engine_name(engine);
        let mine: Vec<&BenchPoint> = points
            .iter()
            .filter(|p| p.kind == "kernel" && p.engine == ename)
            .collect();
        let sim: u64 = mine.iter().map(|p| p.cycles * p.iterations).sum();
        let wall: f64 = mine.iter().map(|p| p.host.wall_seconds).sum();
        kernel_suite.push(EngineAggregate {
            engine: ename.to_string(),
            sim_cycles_total: sim,
            wall_seconds: round_us(wall),
            cycles_per_second: round_us(sim as f64 / wall.max(1e-9)),
        });
    }
    let sim_cycles_total = points.iter().map(|p| p.cycles * p.iterations).sum();

    let mut report = BenchReport {
        suite: if params.quick { "quick" } else { "full" }.to_string(),
        memory: params.memory.to_string(),
        points,
        kernel_suite,
        sim_cycles_total,
        wall_seconds_total,
        peak_rss_kb: peak_rss_kb(),
    };
    if params.deterministic {
        report.zero_host();
    }
    (report, guests)
}

/// Result of [`cache_effectiveness_check`]: the second-pass report plus
/// the cache counters after each pass and any detected problems.
#[derive(Clone, Debug)]
pub struct CacheCheck {
    /// The second (fully cache-served) run's report.
    pub report: BenchReport,
    /// Cache counters after the first pass (all compiles are misses).
    pub first_pass: CacheStats,
    /// Cache counters after the second pass (must add only hits).
    pub second_pass: CacheStats,
    /// Hard failures; empty means the cache is effective.
    pub problems: Vec<String>,
}

/// CI smoke test for cache effectiveness: runs the bench matrix twice
/// against one shared cache and checks that the second pass compiles
/// nothing (no new artifact or profile misses, exactly one hit per
/// point) and reports byte-identically.  Only meaningful with
/// `--deterministic` params — otherwise wall timings legitimately differ
/// between passes and the byte comparison fails.
pub fn cache_effectiveness_check(params: &BenchParams) -> CacheCheck {
    cache_effectiveness_check_t(params, &NullTelemetry)
}

/// [`cache_effectiveness_check`] with both passes instrumented (task
/// spans and compile/cache telemetry for each pass flow into `tel`).
pub fn cache_effectiveness_check_t<T: Telemetry>(params: &BenchParams, tel: &T) -> CacheCheck {
    let cache = ArtifactCache::new();
    let first = run_bench_with_cache_t(params, &cache, tel, false).0;
    let first_pass = cache.stats();
    let second = run_bench_with_cache_t(params, &cache, tel, false).0;
    let second_pass = cache.stats();

    let mut problems = Vec::new();
    if second_pass.misses != first_pass.misses {
        problems.push(format!(
            "second pass recompiled {} artifact(s); the cache is not effective",
            second_pass.misses - first_pass.misses
        ));
    }
    if second_pass.profile_misses != first_pass.profile_misses {
        problems.push(format!(
            "second pass re-ran {} training profile(s)",
            second_pass.profile_misses - first_pass.profile_misses
        ));
    }
    let second_hits = second_pass.hits - first_pass.hits;
    let requests = second.points.len() as u64;
    if second_hits != requests {
        problems.push(format!(
            "second pass: expected {requests} cache hits (one per point), saw {second_hits}"
        ));
    }
    if first.to_json().pretty() != second.to_json().pretty() {
        problems.push("second pass produced a byte-different report".to_string());
    }
    CacheCheck {
        report: second,
        first_pass,
        second_pass,
        problems,
    }
}

/// Outcome of a baseline comparison: hard failures gate CI, warnings are
/// emitted as GitHub annotations, notes are informational.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct BenchCheck {
    /// Schema or determinism breakage — exit non-zero.
    pub failures: Vec<String>,
    /// Wall-time regressions beyond tolerance — annotate, don't fail.
    pub warnings: Vec<String>,
    /// Improvements and new points.
    pub notes: Vec<String>,
}

impl BenchCheck {
    /// True when nothing hard-failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the check outcome for stderr, naming `baseline_path` in
    /// both the verdict line and every failure line — a drift report
    /// must say which file it compared against, because CI jobs check
    /// different baselines and "determinism breakage" is actionable
    /// only with the file to rebaseline.  Warnings are *not* rendered
    /// here: they go to stdout as GitHub `::warning` annotations.
    pub fn render(&self, baseline_path: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for note in &self.notes {
            writeln!(s, "note: {note}").unwrap();
        }
        for failure in &self.failures {
            writeln!(s, "FAIL [{baseline_path}]: {failure}").unwrap();
        }
        if self.passed() {
            writeln!(
                s,
                "check vs {baseline_path}: ok ({} warning(s))",
                self.warnings.len()
            )
            .unwrap();
        } else {
            writeln!(
                s,
                "check vs {baseline_path}: FAILED ({} hard failure(s))",
                self.failures.len()
            )
            .unwrap();
        }
        s
    }
}

fn point_key(j: &Json) -> Option<(String, String, String, String)> {
    Some((
        j.get("kind")?.as_str()?.to_string(),
        j.get("name")?.as_str()?.to_string(),
        j.get("model")?.as_str()?.to_string(),
        j.get("engine")?.as_str()?.to_string(),
    ))
}

/// Compares `current` against the checked-in `baseline` document.
///
/// Deterministic fields (`iterations`, `cycles`, `commits`, `squashes`,
/// `recoveries`) must match exactly for every baseline point, and the
/// schema version and suite must agree — anything else is a hard failure.
/// Execute-phase wall time may drift by `tolerance` (relative, e.g. 0.2
/// for ±20%) before a warning fires; wall comparison is skipped when
/// either side was recorded `--deterministic` (zeroed).
pub fn check_report(current: &BenchReport, baseline: &Json, tolerance: f64) -> BenchCheck {
    let mut check = BenchCheck::default();

    match baseline.get("schema_version").and_then(Json::as_i64) {
        Some(v) if v == BENCH_SCHEMA_VERSION as i64 => {}
        Some(v) => check.failures.push(format!(
            "schema_version mismatch: baseline {v}, current {BENCH_SCHEMA_VERSION}"
        )),
        None => check
            .failures
            .push("baseline has no schema_version".to_string()),
    }
    match baseline.get("suite").and_then(Json::as_str) {
        Some(s) if s == current.suite => {}
        Some(s) => check.failures.push(format!(
            "suite mismatch: baseline ran {s:?}, current ran {:?}",
            current.suite
        )),
        None => check.failures.push("baseline has no suite".to_string()),
    }
    match baseline.get("memory").and_then(Json::as_str) {
        Some(m) if m == current.memory => {}
        Some(m) => check.failures.push(format!(
            "memory-model mismatch: baseline ran {m:?}, current ran {:?}",
            current.memory
        )),
        None => check
            .failures
            .push("baseline has no memory model".to_string()),
    }

    let empty = Vec::new();
    let base_points = baseline
        .get("points")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    if base_points.is_empty() {
        check.failures.push("baseline has no points".to_string());
    }

    let mut matched = 0usize;
    let mut wall_skipped = 0usize;
    for bp in base_points {
        let Some(key) = point_key(bp) else {
            check
                .failures
                .push("baseline point is missing identity fields".to_string());
            continue;
        };
        let label = format!("{}/{}/{}/{}", key.0, key.1, key.2, key.3);
        let Some(cur) = current.points.iter().find(|p| {
            (
                p.kind.as_str(),
                p.name.as_str(),
                p.model.as_str(),
                p.engine.as_str(),
            ) == (
                key.0.as_str(),
                key.1.as_str(),
                key.2.as_str(),
                key.3.as_str(),
            )
        }) else {
            check
                .failures
                .push(format!("{label}: point missing from current run"));
            continue;
        };
        matched += 1;
        for (field, got) in [
            ("iterations", cur.iterations),
            ("cycles", cur.cycles),
            ("commits", cur.commits),
            ("squashes", cur.squashes),
            ("recoveries", cur.recoveries),
            ("stall_ifetch", cur.stall_ifetch),
            ("stall_load_miss", cur.stall_load_miss),
            ("icache_accesses", cur.icache_accesses),
            ("icache_misses", cur.icache_misses),
            ("dcache_accesses", cur.dcache_accesses),
            ("dcache_misses", cur.dcache_misses),
        ] {
            match bp.get(field).and_then(Json::as_i64) {
                Some(want) if want == got as i64 => {}
                Some(want) => check.failures.push(format!(
                    "{label}: determinism breakage: {field} was {want}, now {got}"
                )),
                None => check
                    .failures
                    .push(format!("{label}: baseline point lacks {field}")),
            }
        }
        let base_wall = bp
            .get("host")
            .and_then(|h| h.get("wall_seconds"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let cur_wall = cur.host.wall_seconds;
        if base_wall > 0.0 && cur_wall > 0.0 {
            let ratio = cur_wall / base_wall;
            if ratio > 1.0 + tolerance {
                check.warnings.push(format!(
                    "{label}: wall time regressed {:.0}% ({base_wall:.4}s -> {cur_wall:.4}s)",
                    (ratio - 1.0) * 100.0
                ));
            } else if ratio < 1.0 - tolerance {
                check.notes.push(format!(
                    "{label}: wall time improved {:.0}% ({base_wall:.4}s -> {cur_wall:.4}s); \
                     consider re-baselining",
                    (1.0 - ratio) * 100.0
                ));
            }
        } else {
            // A `--deterministic` baseline (or current run) zeroes its
            // host timings; comparing against it would flag 100% drift
            // on every point.  Skip — but say so, once, below.
            wall_skipped += 1;
        }
    }
    if wall_skipped > 0 {
        check.notes.push(format!(
            "wall-time comparison skipped for {wall_skipped} point(s): baseline or current \
             run has zeroed host timings (--deterministic); counters were still checked"
        ));
    }
    if matched < current.points.len() {
        check.notes.push(format!(
            "{} point(s) in the current run are not in the baseline",
            current.points.len() - matched
        ));
    }
    check
}

/// Renders a human-readable summary table (stderr companion to the JSON).
pub fn render_bench(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(
        s,
        "Bench suite `{}` (memory {}): {} points, {} simulated cycles",
        report.suite,
        report.memory,
        report.points.len(),
        report.sim_cycles_total
    )
    .unwrap();
    writeln!(
        s,
        "{:<9} {:<9} {:<12} {:<10} {:>6} {:>9} {:>9} {:>12}",
        "kind", "name", "model", "engine", "iters", "cycles", "wall(s)", "cyc/s"
    )
    .unwrap();
    for p in &report.points {
        writeln!(
            s,
            "{:<9} {:<9} {:<12} {:<10} {:>6} {:>9} {:>9.4} {:>12.0}",
            p.kind,
            p.name,
            p.model,
            p.engine,
            p.iterations,
            p.cycles,
            p.host.wall_seconds,
            p.host.cycles_per_second
        )
        .unwrap();
    }
    for a in &report.kernel_suite {
        writeln!(
            s,
            "kernel suite [{}]: {} cycles in {:.4}s = {:.0} cycles/s",
            a.engine, a.sim_cycles_total, a.wall_seconds, a.cycles_per_second
        )
        .unwrap();
    }
    // Memory-stall attribution, aggregated — only when the model can
    // stall at all (perfect memory reports all-zero counters).
    let (si, sl): (u64, u64) = report.points.iter().fold((0, 0), |(a, b), p| {
        (a + p.stall_ifetch, b + p.stall_load_miss)
    });
    if si + sl > 0 {
        let (ia, im, da, dm) = report.points.iter().fold((0u64, 0u64, 0u64, 0u64), |t, p| {
            (
                t.0 + p.icache_accesses,
                t.1 + p.icache_misses,
                t.2 + p.dcache_accesses,
                t.3 + p.dcache_misses,
            )
        });
        let rate = |m: u64, a: u64| 100.0 * m as f64 / a.max(1) as f64;
        writeln!(
            s,
            "memory stalls: {si} ifetch + {sl} load-miss cycles; \
             I$ {im}/{ia} misses ({:.1}%), D$ {dm}/{da} misses ({:.1}%)",
            rate(im, ia),
            rate(dm, da)
        )
        .unwrap();
    }
    writeln!(
        s,
        "total wall {:.3}s, peak RSS {} kB",
        report.wall_seconds_total, report.peak_rss_kb
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        BenchReport {
            suite: "quick".to_string(),
            memory: "perfect".to_string(),
            points: vec![BenchPoint {
                kind: "kernel".into(),
                name: "gcd".into(),
                model: "region-pred".into(),
                engine: "predecoded".into(),
                iterations: 10,
                cycles: 100,
                commits: 5,
                squashes: 2,
                recoveries: 0,
                stall_ifetch: 0,
                stall_load_miss: 0,
                icache_accesses: 0,
                icache_misses: 0,
                dcache_accesses: 0,
                dcache_misses: 0,
                host: HostSample::default(),
            }],
            kernel_suite: vec![EngineAggregate {
                engine: "predecoded".into(),
                sim_cycles_total: 1000,
                wall_seconds: 0.0,
                cycles_per_second: 0.0,
            }],
            sim_cycles_total: 1000,
            wall_seconds_total: 0.0,
            peak_rss_kb: 0,
        }
    }

    #[test]
    fn self_check_passes() {
        let r = tiny_report();
        let baseline = Json::parse(&r.to_json().pretty()).unwrap();
        let check = check_report(&r, &baseline, 0.2);
        assert!(check.passed(), "{:?}", check.failures);
        assert!(check.warnings.is_empty());
    }

    #[test]
    fn determinism_breakage_hard_fails() {
        let r = tiny_report();
        let baseline = Json::parse(&r.to_json().pretty()).unwrap();
        let mut drifted = r.clone();
        drifted.points[0].cycles = 101;
        let check = check_report(&drifted, &baseline, 0.2);
        assert!(!check.passed());
        assert!(check.failures[0].contains("determinism breakage"));
    }

    #[test]
    fn missing_point_hard_fails_and_wall_drift_warns() {
        let mut r = tiny_report();
        r.points[0].host.wall_seconds = 1.0;
        let baseline = Json::parse(&r.to_json().pretty()).unwrap();

        let missing = BenchReport {
            points: vec![],
            ..r.clone()
        };
        assert!(!check_report(&missing, &baseline, 0.2).passed());

        let mut slow = r.clone();
        slow.points[0].host.wall_seconds = 1.5;
        let check = check_report(&slow, &baseline, 0.2);
        assert!(check.passed());
        assert_eq!(check.warnings.len(), 1, "{:?}", check.warnings);

        let mut fast = r.clone();
        fast.points[0].host.wall_seconds = 0.5;
        let check = check_report(&fast, &baseline, 0.2);
        assert!(check.passed() && check.warnings.is_empty());
        assert!(check.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn zeroed_baseline_skips_wall_drift_with_a_note() {
        // A --deterministic baseline carries zeroed host timings.  A
        // later timed run must not be flagged for "drifting" from 0.0s —
        // the wall comparison is skipped, with an explicit note.
        let r = tiny_report();
        let baseline = Json::parse(&r.to_json().pretty()).unwrap();
        let mut timed = r.clone();
        timed.points[0].host.wall_seconds = 3.7;
        let check = check_report(&timed, &baseline, 0.2);
        assert!(check.passed(), "{:?}", check.failures);
        assert!(check.warnings.is_empty(), "{:?}", check.warnings);
        assert!(
            check
                .notes
                .iter()
                .any(|n| n.contains("wall-time comparison skipped for 1 point(s)")),
            "{:?}",
            check.notes
        );
    }

    #[test]
    fn rendered_failure_names_the_baseline_path() {
        // A drift failure must say which baseline file it compared
        // against — previously only the success path printed it.
        let r = tiny_report();
        let baseline = Json::parse(&r.to_json().pretty()).unwrap();
        let mut drifted = r.clone();
        drifted.points[0].cycles = 101;
        let check = check_report(&drifted, &baseline, 0.2);
        let rendered = check.render("baselines/bench_baseline.json");
        assert!(
            rendered.contains("FAIL [baselines/bench_baseline.json]: "),
            "{rendered}"
        );
        assert!(
            rendered.contains("check vs baselines/bench_baseline.json: FAILED (1 hard failure(s))"),
            "{rendered}"
        );
        // The success rendering keeps naming the file too.
        let ok = check_report(&r, &baseline, 0.2).render("b.json");
        assert!(ok.contains("check vs b.json: ok (0 warning(s))"), "{ok}");
        assert!(!ok.contains("FAIL"), "{ok}");
    }

    #[test]
    fn schema_version_mismatch_hard_fails() {
        let r = tiny_report();
        let mut doc = r.to_json();
        if let Json::Object(fields) = &mut doc {
            fields[0].1 = Json::Int(999);
        }
        assert!(!check_report(&r, &doc, 0.2).passed());
    }

    #[test]
    fn memory_model_mismatch_hard_fails() {
        // A cache-model run gated against a perfect-memory baseline (or
        // vice versa) must fail loudly, not diff counters that can never
        // match.
        let r = tiny_report();
        let baseline = Json::parse(&r.to_json().pretty()).unwrap();
        let mut cached = r.clone();
        cached.memory = "cache:off:64x2x4x1x10".to_string();
        let check = check_report(&cached, &baseline, 0.2);
        assert!(!check.passed());
        assert!(
            check.failures.iter().any(|f| f.contains("memory-model")),
            "{:?}",
            check.failures
        );
    }

    #[test]
    fn cache_model_point_reports_misses_and_stalls() {
        let spec = PointSpec {
            kind: "kernel",
            name: "dotprod".to_string(),
            model: Model::RegionPred,
            engine: Engine::default(),
            target_cycles: 1,
            size: 0,
            memory: MemoryModel::parse("cache:8x1x2x1x4:4x2x2x1x6").unwrap(),
        };
        let (p, _) = run_point(&spec, &ArtifactCache::new(), &NullTelemetry, false);
        assert!(p.icache_accesses > 0 && p.dcache_accesses > 0);
        assert!(p.icache_misses > 0, "cold I$ must miss");
        assert!(p.stall_ifetch > 0, "I$ misses must stall fetch");
    }

    #[test]
    fn run_point_is_repeatable() {
        // The real matrix is too slow for a unit test; exercise the
        // plumbing on the smallest kernel subset via run_point directly.
        let spec = PointSpec {
            kind: "kernel",
            name: "gcd".to_string(),
            model: Model::RegionPred,
            engine: Engine::default(),
            target_cycles: 1,
            size: 0,
            memory: MemoryModel::Perfect,
        };
        // Fresh caches so the second call exercises a full recompile,
        // not a cache hit.
        let (a, ga) = run_point(&spec, &ArtifactCache::new(), &NullTelemetry, false);
        let (b, gb) = run_point(&spec, &ArtifactCache::new(), &NullTelemetry, true);
        assert!(a.cycles > 0);
        assert_eq!(
            (a.cycles, a.commits, a.squashes),
            (b.cycles, b.commits, b.squashes)
        );
        assert!(ga.is_none());
        let guest = gb.expect("guest trace requested");
        assert_eq!(guest.cycles, b.cycles);
        assert!(!guest.events.is_empty());
    }

    #[test]
    fn cache_check_passes_on_a_tiny_deterministic_run() {
        let params = BenchParams {
            quick: true,
            deterministic: true,
            target_cycles: Some(1),
            ..BenchParams::default()
        };
        let cc = cache_effectiveness_check(&params);
        assert!(cc.problems.is_empty(), "{:?}", cc.problems);
        assert_eq!(cc.second_pass.misses, cc.first_pass.misses);
        assert!(cc.first_pass.misses > 0);
    }
}
