//! `repro sweep` — batched lockstep design-space sweeps with a
//! deterministic, gateable report.
//!
//! The paper could only sample its (issue-width × buffer-depth ×
//! scan-strategy × model) design space; `repro sweep` explores a
//! configurable grid of it exhaustively.  Each (kernel × model) pair
//! compiles exactly once — the compile key deliberately excludes
//! `MachineConfig`, so one artifact serves the whole machine grid — and
//! the grid's configurations then run as lanes of a
//! [`BatchedMachine`](psb_core::BatchedMachine): one shared decoded
//! arena, lockstep stepping, independent lane retirement.
//!
//! Every sweep run also measures the *point-at-a-time* baseline — the
//! full single-point pipeline this repo's point runners execute per
//! point (kernel load, golden scalar run, artifact-cache lookup, solo
//! machine, golden cross-check), exactly what sweeping the grid through
//! `repro bench`'s point runner or the experiments' `run_workload`
//! costs — over the same grid, records the aggregate speedup in the
//! report's host section, and holds every lane's [`VliwResult`]
//! byte-equal to its solo run — a sweep number can never come from a
//! divergent lane.
//!
//! The report follows the `BENCH.json` determinism contract: simulated
//! counters are byte-identical across hosts and `--jobs` values; wall
//! times and the derived speedup live in `host` objects that
//! `--deterministic` zeroes, so CI can `cmp` two runs and gate counter
//! drift against `baselines/sweep_baseline.json` via [`check_sweep`].

use crate::bench::{asm_dir, BenchCheck};
use crate::json::{Json, ToJson};
use crate::runner::parallel_map;
use crate::trace::parse_model;
use psb_compile::{compile, ArtifactCache, CompileRequest, ProfileSource};
use psb_core::{
    CacheConfig, CommitScan, MachineConfig, MemoryModel, NullSink, ShadowMode, VliwResult,
};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use psb_telemetry::round_us;
use std::time::Instant;

/// Version string stamped into the sweep report; a mismatch against the
/// baseline is a hard check failure.
pub const SWEEP_SCHEMA_VERSION: &str = "psb-sweep-v1";

/// Timed-phase repetitions per artifact; the report keeps the fastest
/// wall sample of each phase.
const MEASURE_REPS: usize = 7;

/// Pipeline executions per timed sample.  The per-artifact phases are
/// sub-millisecond; stretching each sample over several executions
/// keeps scheduler jitter from dominating a single `Instant` window.
const MEASURE_INNER: u32 = 3;

/// The stable report name of a commit-scan strategy.
fn scan_name(s: CommitScan) -> &'static str {
    match s {
        CommitScan::Naive => "naive",
        CommitScan::Indexed => "indexed",
    }
}

fn parse_scan(s: &str) -> Option<CommitScan> {
    match s {
        "naive" => Some(CommitScan::Naive),
        "indexed" => Some(CommitScan::Indexed),
        _ => None,
    }
}

/// The stable report name of a cache axis value: `"off"` or the
/// `SETSxWAYSxLINExHITxMISS` spec.
fn cache_axis_name(c: &Option<CacheConfig>) -> String {
    match c {
        None => "off".to_string(),
        Some(c) => c.to_string(),
    }
}

fn parse_cache_axis(v: &str) -> Result<Option<CacheConfig>, String> {
    if v == "off" {
        return Ok(None);
    }
    CacheConfig::parse(v).map(Some)
}

/// The design-space grid one sweep explores.  The machine dimensions
/// (width × sb × scan × latency) form the lane set of every
/// (kernel × model) artifact; their cross product is the sweep's point
/// count.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepGrid {
    /// Kernel programs (names under `asm/`).
    pub kernels: Vec<String>,
    /// Scheduling models (compile-time dimension: one artifact each).
    pub models: Vec<Model>,
    /// Issue widths, realised as full-issue machines (Figure 8's axis).
    pub widths: Vec<usize>,
    /// Store-buffer depths.
    pub sb: Vec<usize>,
    /// Commit-scan strategies (architecturally identical — their
    /// byte-equal counters are themselves a differential check).
    pub scans: Vec<CommitScan>,
    /// Load latencies in cycles.  Only meaningful for `off`-cache lanes
    /// (perfect memory); a lane with any cache takes its load and fetch
    /// timing from the cache specs instead.
    pub latencies: Vec<u64>,
    /// Instruction-cache axis: `None` = off (single-cycle fetch), or a
    /// parameterized cache.
    pub icaches: Vec<Option<CacheConfig>>,
    /// Data-cache axis: `None` = off, or a parameterized cache.
    pub dcaches: Vec<Option<CacheConfig>>,
    /// Maximum lanes per lockstep batch; a grid larger than this runs
    /// in successive batches.
    pub batch_width: usize,
}

/// One machine-grid lane: the cross product element of the sweep's
/// machine dimensions, in report order.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LaneAxis {
    /// Issue width.
    pub width: usize,
    /// Store-buffer depth.
    pub sb: usize,
    /// Commit-scan strategy.
    pub scan: CommitScan,
    /// Load latency (perfect-memory lanes only).
    pub latency: u64,
    /// Instruction cache, or `None` for single-cycle fetch.
    pub icache: Option<CacheConfig>,
    /// Data cache, or `None` for fixed-latency loads.
    pub dcache: Option<CacheConfig>,
}

impl LaneAxis {
    /// The lane's memory model: perfect when both caches are off (so
    /// cache-free grids reproduce the paper's fixed-latency timing
    /// bit-for-bit), the parameterized hierarchy otherwise.
    pub fn memory(&self) -> MemoryModel {
        if self.icache.is_none() && self.dcache.is_none() {
            MemoryModel::Perfect
        } else {
            MemoryModel::Cache {
                icache: self.icache,
                dcache: self.dcache,
            }
        }
    }
}

impl SweepGrid {
    /// The CI quick grid: 8 machine configs × 8 artifacts = 64 points.
    pub fn quick() -> SweepGrid {
        SweepGrid {
            kernels: crate::KERNELS.iter().map(|k| k.to_string()).collect(),
            models: vec![Model::RegionPred, Model::TracePred],
            widths: vec![4],
            sb: vec![4, 16],
            scans: vec![CommitScan::Naive, CommitScan::Indexed],
            latencies: vec![2, 4],
            icaches: vec![None],
            dcaches: vec![None],
            batch_width: 8,
        }
    }

    /// The default full grid: 48 machine configs × 8 artifacts = 384
    /// points.
    pub fn full() -> SweepGrid {
        SweepGrid {
            widths: vec![4, 8],
            sb: vec![2, 4, 8, 16],
            latencies: vec![2, 3, 4],
            batch_width: 16,
            ..SweepGrid::quick()
        }
    }

    /// The machine-dimension cross product, in fixed nesting order
    /// (width, then sb, then scan, then latency, then icache, then
    /// dcache) — the lane order of every batch and the point order of
    /// the report.
    pub fn lane_axes(&self) -> Vec<LaneAxis> {
        let mut axes = Vec::new();
        for &w in &self.widths {
            for &sb in &self.sb {
                for &scan in &self.scans {
                    for &lat in &self.latencies {
                        for &ic in &self.icaches {
                            for &dc in &self.dcaches {
                                axes.push(LaneAxis {
                                    width: w,
                                    sb,
                                    scan,
                                    latency: lat,
                                    icache: ic,
                                    dcache: dc,
                                });
                            }
                        }
                    }
                }
            }
        }
        axes
    }
}

impl ToJson for SweepGrid {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernels", self.kernels.to_json()),
            (
                "models",
                Json::Array(
                    self.models
                        .iter()
                        .map(|m| m.name().to_json())
                        .collect::<Vec<_>>(),
                ),
            ),
            ("widths", self.widths.to_json()),
            ("sb", self.sb.to_json()),
            (
                "scans",
                Json::Array(
                    self.scans
                        .iter()
                        .map(|&s| scan_name(s).to_json())
                        .collect::<Vec<_>>(),
                ),
            ),
            ("latencies", self.latencies.to_json()),
            (
                "icaches",
                Json::Array(
                    self.icaches
                        .iter()
                        .map(|c| cache_axis_name(c).to_json())
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "dcaches",
                Json::Array(
                    self.dcaches
                        .iter()
                        .map(|c| cache_axis_name(c).to_json())
                        .collect::<Vec<_>>(),
                ),
            ),
            ("batch_width", self.batch_width.to_json()),
        ])
    }
}

/// Parses a `--grid` spec on top of `base`, overriding only the named
/// dimensions.  The spec is `dim=v1,v2[;dim=...]` with dimensions
/// `kernel`, `model`, `width`, `sb`, `scan`, `latency`, `icache`,
/// `dcache` and `batch`
/// (e.g. `"width=4,8;sb=2,16;scan=indexed;model=all"`).
///
/// Numeric dimensions also accept ranges: `lo..hi` enumerates every
/// value (inclusive) and `lo..hi:pow2` doubles from `lo` while within
/// `hi` — `sb=1..64:pow2` is `1,2,4,8,16,32,64` and `latency=1..8` is
/// all eight.  Ranges and plain values mix freely in one list.
///
/// The cache dimensions take `off` or a `SETSxWAYSxLINExHITxMISS` spec
/// (e.g. `dcache=off,64x2x4x1x10`); every icache × dcache combination
/// becomes a lane.
///
/// # Errors
///
/// A ready-to-print message for the first unknown dimension, unknown
/// value, or empty value list.
pub fn parse_grid(spec: &str, base: SweepGrid) -> Result<SweepGrid, String> {
    let mut grid = base;
    for part in spec.split(';').filter(|p| !p.is_empty()) {
        let (dim, vals) = part
            .split_once('=')
            .ok_or_else(|| format!("grid dimension `{part}` is not dim=v1,v2"))?;
        let vals: Vec<&str> = vals.split(',').filter(|v| !v.is_empty()).collect();
        if vals.is_empty() {
            return Err(format!("grid dimension `{dim}` has no values"));
        }
        /// Expands one list entry: a plain number, `lo..hi`, or
        /// `lo..hi:pow2`.
        fn expand(dim: &str, v: &str, min: u64) -> Result<Vec<u64>, String> {
            let Some((lo, rest)) = v.split_once("..") else {
                return v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= min)
                    .map(|n| vec![n])
                    .ok_or_else(|| format!("grid `{dim}` needs numbers >= {min}, got `{v}`"));
            };
            let (hi, pow2) = match rest.split_once(':') {
                None => (rest, false),
                Some((h, "pow2")) => (h, true),
                Some((_, step)) => {
                    return Err(format!(
                        "grid `{dim}` range step `{step}` unknown (only `pow2`)"
                    ))
                }
            };
            let parse = |s: &str| {
                s.parse::<u64>()
                    .ok()
                    .filter(|&n| n >= min)
                    .ok_or_else(|| format!("grid `{dim}` needs numbers >= {min}, got `{s}`"))
            };
            let (lo, hi) = (parse(lo)?, parse(hi)?);
            if lo > hi {
                return Err(format!("grid `{dim}` range `{v}` is empty (lo > hi)"));
            }
            if !pow2 && hi - lo >= 1024 {
                return Err(format!(
                    "grid `{dim}` range `{v}` spans {} values; cap is 1024",
                    hi - lo + 1
                ));
            }
            let mut out = Vec::new();
            if pow2 {
                let mut n = lo;
                while n <= hi {
                    out.push(n);
                    match n.checked_mul(2) {
                        Some(next) => n = next,
                        None => break,
                    }
                }
            } else {
                out.extend(lo..=hi);
            }
            Ok(out)
        }
        fn nums<T: TryFrom<u64>>(dim: &str, vals: &[&str], min: u64) -> Result<Vec<T>, String> {
            let mut out = Vec::new();
            for v in vals {
                for n in expand(dim, v, min)? {
                    out.push(T::try_from(n).map_err(|_| {
                        format!("grid `{dim}` value {n} is out of range for the dimension")
                    })?);
                }
            }
            Ok(out)
        }
        match dim {
            "kernel" => {
                grid.kernels = vals
                    .iter()
                    .map(|v| {
                        if crate::KERNELS.contains(v) {
                            Ok(v.to_string())
                        } else {
                            Err(format!("grid kernel `{v}` is not in asm/"))
                        }
                    })
                    .collect::<Result<_, _>>()?;
            }
            "model" => {
                if vals == ["all"] {
                    grid.models = Model::ALL.to_vec();
                } else {
                    grid.models = vals
                        .iter()
                        .map(|v| parse_model(v).ok_or_else(|| format!("grid model `{v}` unknown")))
                        .collect::<Result<_, _>>()?;
                }
            }
            "width" => grid.widths = nums("width", &vals, 1)?,
            "sb" => grid.sb = nums("sb", &vals, 1)?,
            "scan" => {
                grid.scans = vals
                    .iter()
                    .map(|v| {
                        parse_scan(v).ok_or_else(|| format!("grid scan `{v}` (naive|indexed)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "latency" => grid.latencies = nums("latency", &vals, 1)?,
            "icache" => {
                grid.icaches = vals
                    .iter()
                    .map(|v| parse_cache_axis(v).map_err(|e| format!("grid icache `{v}`: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "dcache" => {
                grid.dcaches = vals
                    .iter()
                    .map(|v| parse_cache_axis(v).map_err(|e| format!("grid dcache `{v}`: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "batch" => {
                let b: Vec<usize> = nums("batch", &vals, 1)?;
                if b.len() != 1 {
                    return Err("grid `batch` takes exactly one value".to_string());
                }
                grid.batch_width = b[0];
            }
            other => return Err(format!("unknown grid dimension `{other}`")),
        }
    }
    Ok(grid)
}

/// Parameters of one `repro sweep` invocation.
#[derive(Clone, Debug)]
pub struct SweepParams {
    /// `"quick"`/`"full"` suite tag (grid defaults follow it).
    pub quick: bool,
    /// Zero every host-dependent field so two runs diff byte-identically.
    pub deterministic: bool,
    /// Worker threads over (kernel × model) artifact units; the report
    /// is byte-identical for every value.
    pub jobs: usize,
    /// The grid to sweep.
    pub grid: SweepGrid,
}

/// One measured design point: a machine configuration of one compiled
/// artifact.  All fields are deterministic.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepPoint {
    /// Kernel name.
    pub kernel: String,
    /// Scheduling model name.
    pub model: String,
    /// Issue width (full-issue resources).
    pub width: usize,
    /// Store-buffer depth.
    pub sb: usize,
    /// Commit-scan strategy name.
    pub scan: String,
    /// Load latency in cycles.
    pub latency: u64,
    /// Instruction-cache axis name (`"off"` or the spec).
    pub icache: String,
    /// Data-cache axis name (`"off"` or the spec).
    pub dcache: String,
    /// Total cycles.
    pub cycles: u64,
    /// Words issued.
    pub words_issued: u64,
    /// Buffered commits.
    pub commits: u64,
    /// Buffered squashes.
    pub squashes: u64,
    /// Recovery episodes.
    pub recoveries: u64,
    /// Operand stall cycles.
    pub stall_operand: u64,
    /// Store-buffer-full stall cycles.
    pub stall_sb_full: u64,
    /// Instruction-fetch stall cycles.
    pub stall_ifetch: u64,
    /// Stall cycles charged to an outstanding data-cache miss.
    pub stall_load_miss: u64,
    /// I$ accesses (0 when the icache axis is off).
    pub icache_accesses: u64,
    /// I$ misses.
    pub icache_misses: u64,
    /// D$ accesses (0 when the dcache axis is off).
    pub dcache_accesses: u64,
    /// D$ misses.
    pub dcache_misses: u64,
}

/// The deterministic counters compared exactly by [`check_sweep`].
const POINT_COUNTERS: [&str; 13] = [
    "cycles",
    "words_issued",
    "commits",
    "squashes",
    "recoveries",
    "stall_operand",
    "stall_sb_full",
    "stall_ifetch",
    "stall_load_miss",
    "icache_accesses",
    "icache_misses",
    "dcache_accesses",
    "dcache_misses",
];

impl SweepPoint {
    fn counter(&self, field: &str) -> u64 {
        match field {
            "cycles" => self.cycles,
            "words_issued" => self.words_issued,
            "commits" => self.commits,
            "squashes" => self.squashes,
            "recoveries" => self.recoveries,
            "stall_operand" => self.stall_operand,
            "stall_sb_full" => self.stall_sb_full,
            "stall_ifetch" => self.stall_ifetch,
            "stall_load_miss" => self.stall_load_miss,
            "icache_accesses" => self.icache_accesses,
            "icache_misses" => self.icache_misses,
            "dcache_accesses" => self.dcache_accesses,
            "dcache_misses" => self.dcache_misses,
            _ => unreachable!("unknown sweep counter {field}"),
        }
    }
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", self.kernel.to_json()),
            ("model", self.model.to_json()),
            ("width", self.width.to_json()),
            ("sb", self.sb.to_json()),
            ("scan", self.scan.to_json()),
            ("latency", self.latency.to_json()),
            ("icache", self.icache.to_json()),
            ("dcache", self.dcache.to_json()),
            ("cycles", self.cycles.to_json()),
            ("words_issued", self.words_issued.to_json()),
            ("commits", self.commits.to_json()),
            ("squashes", self.squashes.to_json()),
            ("recoveries", self.recoveries.to_json()),
            ("stall_operand", self.stall_operand.to_json()),
            ("stall_sb_full", self.stall_sb_full.to_json()),
            ("stall_ifetch", self.stall_ifetch.to_json()),
            ("stall_load_miss", self.stall_load_miss.to_json()),
            ("icache_accesses", self.icache_accesses.to_json()),
            ("icache_misses", self.icache_misses.to_json()),
            ("dcache_accesses", self.dcache_accesses.to_json()),
            ("dcache_misses", self.dcache_misses.to_json()),
        ])
    }
}

/// Host-dependent timings of a batched-vs-solo comparison; zeroed by
/// `--deterministic`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SweepHost {
    /// Wall seconds of the batched lockstep phase (per-chunk cache
    /// lookup + lockstep run of all lanes).
    pub batched_wall_seconds: f64,
    /// Wall seconds of the point-at-a-time phase (per-point cache
    /// lookup + solo run), over the same configurations.
    pub solo_wall_seconds: f64,
    /// `solo / batched` — aggregate sim-throughput gain of batching.
    pub speedup: f64,
}

impl ToJson for SweepHost {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("batched_wall_seconds", self.batched_wall_seconds.to_json()),
            ("solo_wall_seconds", self.solo_wall_seconds.to_json()),
            ("speedup", self.speedup.to_json()),
        ])
    }
}

/// Per-artifact (kernel × model) batched-vs-solo accounting.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepArtifact {
    /// Kernel name.
    pub kernel: String,
    /// Scheduling model name.
    pub model: String,
    /// Lanes run (the machine-grid size).
    pub lanes: u64,
    /// Lockstep iterations over all batches of this artifact.
    pub batch_cycles: u64,
    /// Architectural cycles stepped across all lanes.
    pub lane_cycles: u64,
    /// Host-dependent timings.
    pub host: SweepHost,
}

impl ToJson for SweepArtifact {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", self.kernel.to_json()),
            ("model", self.model.to_json()),
            ("lanes", self.lanes.to_json()),
            ("batch_cycles", self.batch_cycles.to_json()),
            ("lane_cycles", self.lane_cycles.to_json()),
            ("host", self.host.to_json()),
        ])
    }
}

/// The whole sweep report (`psb-sweep-v1`).
#[derive(Clone, PartialEq, Debug)]
pub struct SweepReport {
    /// `"full"` or `"quick"`.
    pub suite: String,
    /// The grid that was swept (echoed so the baseline pins it).
    pub grid: SweepGrid,
    /// Every design point, in fixed (kernel, model, lane-axis) order.
    pub points: Vec<SweepPoint>,
    /// Per-artifact batched-vs-solo rows.
    pub artifacts: Vec<SweepArtifact>,
    /// Total design points (`artifacts × lanes`).
    pub lanes_total: u64,
    /// Total simulated cycles across every point (one run each).
    pub sim_cycles_total: u64,
    /// Aggregate host timings and speedup across all artifacts.
    pub host: SweepHost,
}

impl ToJson for SweepReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", SWEEP_SCHEMA_VERSION.to_json()),
            ("suite", self.suite.to_json()),
            ("grid", self.grid.to_json()),
            ("points", self.points.to_json()),
            ("artifacts", self.artifacts.to_json()),
            (
                "totals",
                Json::obj(vec![
                    ("lanes_total", self.lanes_total.to_json()),
                    ("sim_cycles_total", self.sim_cycles_total.to_json()),
                    ("host", self.host.to_json()),
                ]),
            ),
        ])
    }
}

impl SweepReport {
    /// Zeroes every host-dependent field (the `--deterministic`
    /// contract).
    pub fn zero_host(&mut self) {
        for a in &mut self.artifacts {
            a.host = SweepHost::default();
        }
        self.host = SweepHost::default();
    }
}

/// Runs the whole grid for one (kernel × model) artifact: compile once,
/// run the machine grid batched, run it again point-at-a-time, and hold
/// every lane byte-equal to its solo run.
fn run_unit(kernel: &str, model: Model, grid: &SweepGrid, cache: &ArtifactCache) -> UnitResult {
    let path = asm_dir().join(format!("{kernel}.asm"));
    let case = psb_fuzz::load_repro(&path).unwrap_or_else(|e| panic!("sweep kernel {kernel}: {e}"));
    let (program, fault_once) = (case.program, case.fault_once);
    let scalar = ScalarMachine::new(
        &program,
        ScalarConfig {
            fault_once_addrs: fault_once.clone(),
            ..ScalarConfig::default()
        },
    )
    .run()
    .unwrap_or_else(|e| panic!("{kernel}: scalar run failed: {e}"));
    let sched_cfg = SchedConfig::new(model);
    let single_shadow = sched_cfg.single_shadow;
    let req = CompileRequest {
        program: &program,
        profile: ProfileSource::Provided(&scalar.edge_profile),
        sched: sched_cfg.clone(),
    };
    // Warm the cache once, untimed: both timed phases below then measure
    // steady-state sweep behaviour (the solo phase pays one content-hash
    // lookup per point, the batched phase one per chunk — exactly the
    // amortization under test, with no compile in either).
    compile(&req, cache).unwrap_or_else(|e| panic!("{kernel}/{model}: compile failed: {e}"));

    let axes = grid.lane_axes();
    let cfgs: Vec<MachineConfig> = axes
        .iter()
        .map(|ax| MachineConfig {
            shadow_mode: if single_shadow {
                ShadowMode::Single
            } else {
                ShadowMode::Infinite
            },
            fault_once_addrs: fault_once.clone(),
            store_buffer_size: ax.sb,
            commit_scan: ax.scan,
            load_latency: ax.latency,
            memory: ax.memory(),
            ..MachineConfig::full_issue(ax.width)
        })
        .collect();

    // Both timed phases below measure the *whole* per-point pipeline
    // this repo's point runners execute — kernel load + golden scalar
    // run + artifact-cache lookup + simulation + golden cross-check
    // (exactly what `repro bench`'s `run_point` and the experiments'
    // `run_workload` pay per point) — because that is what a sweep
    // actually costs point-at-a-time.  The batched phase pays the load,
    // the scalar run, and (per chunk) the lookup once per *artifact*;
    // the solo phase pays all of them once per *point*.
    let scfg = ScalarConfig {
        fault_once_addrs: fault_once.clone(),
        ..ScalarConfig::default()
    };

    // Batched phase body: lanes step in lockstep over the shared arena
    // with sink calls compiled out (`NullSink` — the sweep never
    // records events, and a `NullSink` lane's `VliwResult` is
    // byte-equal to the solo run's).
    let batched_phase = || -> (Vec<VliwResult>, u64, u64) {
        let rep_case =
            psb_fuzz::load_repro(&path).unwrap_or_else(|e| panic!("sweep kernel {kernel}: {e}"));
        let rep_scalar = ScalarMachine::new(&rep_case.program, scfg.clone())
            .run()
            .unwrap_or_else(|e| panic!("{kernel}: scalar run failed: {e}"));
        let rep_req = CompileRequest {
            program: &rep_case.program,
            profile: ProfileSource::Provided(&rep_scalar.edge_profile),
            sched: sched_cfg.clone(),
        };
        let golden = rep_scalar.observable(&rep_case.program.live_out);
        let mut results: Vec<VliwResult> = Vec::with_capacity(cfgs.len());
        let (mut bc, mut lc) = (0u64, 0u64);
        for chunk in cfgs.chunks(grid.batch_width.max(1)) {
            let art = compile(&rep_req, cache)
                .unwrap_or_else(|e| panic!("{kernel}/{model}: compile failed: {e}"));
            let lanes = chunk.iter().map(|c| (c.clone(), NullSink)).collect();
            let rep = art.run_batch_with_sinks(lanes);
            bc += rep.batch_cycles;
            lc += rep.lane_cycles;
            for (lane, outcome) in rep.lanes.into_iter().enumerate() {
                let (res, _) = outcome.unwrap_or_else(|e| {
                    panic!("{kernel}/{model}: batched lane {lane} failed: {e}")
                });
                assert_eq!(
                    res.observable(&rep_case.program.live_out),
                    golden,
                    "{kernel}/{model}: batched lane {lane} diverged from the scalar \
                     golden model"
                );
                results.push(res);
            }
        }
        (results, bc, lc)
    };

    // Point-at-a-time phase body: what sweeps did before batching — the
    // full single-point pipeline per configuration.
    let solo_phase = || -> Vec<VliwResult> {
        let mut results: Vec<VliwResult> = Vec::with_capacity(cfgs.len());
        for cfg in &cfgs {
            let p_case = psb_fuzz::load_repro(&path)
                .unwrap_or_else(|e| panic!("sweep kernel {kernel}: {e}"));
            let p_scalar = ScalarMachine::new(&p_case.program, scfg.clone())
                .run()
                .unwrap_or_else(|e| panic!("{kernel}: scalar run failed: {e}"));
            let p_req = CompileRequest {
                program: &p_case.program,
                profile: ProfileSource::Provided(&p_scalar.edge_profile),
                sched: sched_cfg.clone(),
            };
            let art = compile(&p_req, cache)
                .unwrap_or_else(|e| panic!("{kernel}/{model}: compile failed: {e}"));
            let res = art
                .run(cfg.clone())
                .unwrap_or_else(|e| panic!("{kernel}/{model}: solo run failed: {e}"));
            assert_eq!(
                res.observable(&p_case.program.live_out),
                p_scalar.observable(&p_case.program.live_out),
                "{kernel}/{model}: solo run diverged from the scalar golden model"
            );
            results.push(res);
        }
        results
    };

    // The two phases' repetitions interleave (batched, solo, batched,
    // solo, …) so slow drift — frequency scaling, a noisy neighbour —
    // lands on both sides instead of biasing one.  Each sample runs the
    // phase once untimed (warming its working set after the *other*
    // phase just evicted it), then times `MEASURE_INNER` executions;
    // the fastest of `MEASURE_REPS` such samples is reported.
    let mut batched_wall = f64::INFINITY;
    let mut lane_results: Vec<VliwResult> = Vec::new();
    let (mut batch_cycles, mut lane_cycles) = (0u64, 0u64);
    let mut solo_wall = f64::INFINITY;
    let mut solo_results: Vec<VliwResult> = Vec::new();
    for _ in 0..MEASURE_REPS {
        batched_phase();
        let start = Instant::now();
        for _ in 0..MEASURE_INNER {
            (lane_results, batch_cycles, lane_cycles) = batched_phase();
        }
        batched_wall = batched_wall.min(start.elapsed().as_secs_f64() / f64::from(MEASURE_INNER));

        solo_phase();
        let start = Instant::now();
        for _ in 0..MEASURE_INNER {
            solo_results = solo_phase();
        }
        solo_wall = solo_wall.min(start.elapsed().as_secs_f64() / f64::from(MEASURE_INNER));
    }

    // The lane-vs-solo oracle: full `VliwResult` equality (counters,
    // registers, memory, events) plus the scalar golden cross-check — a
    // sweep number can never come from a divergent lane.
    let expected = scalar.observable(&program.live_out);
    for (i, (lane, solo)) in lane_results.iter().zip(&solo_results).enumerate() {
        let ax = axes[i];
        assert_eq!(
            lane,
            solo,
            "{kernel}/{model}: lane {i} (width={} sb={} scan={} latency={} icache={} \
             dcache={}) diverged from its solo run",
            ax.width,
            ax.sb,
            scan_name(ax.scan),
            ax.latency,
            cache_axis_name(&ax.icache),
            cache_axis_name(&ax.dcache)
        );
        assert_eq!(
            lane.observable(&program.live_out),
            expected,
            "{kernel}/{model}: lane {i} diverged from the scalar golden model"
        );
    }

    let points = axes
        .iter()
        .zip(&lane_results)
        .map(|(ax, res)| SweepPoint {
            kernel: kernel.to_string(),
            model: model.name().to_string(),
            width: ax.width,
            sb: ax.sb,
            scan: scan_name(ax.scan).to_string(),
            latency: ax.latency,
            icache: cache_axis_name(&ax.icache),
            dcache: cache_axis_name(&ax.dcache),
            cycles: res.cycles,
            words_issued: res.words_issued,
            commits: res.commits,
            squashes: res.squashes,
            recoveries: res.recoveries,
            stall_operand: res.stall_operand,
            stall_sb_full: res.stall_sb_full,
            stall_ifetch: res.stall_ifetch,
            stall_load_miss: res.stall_load_miss,
            icache_accesses: res.icache_accesses,
            icache_misses: res.icache_misses,
            dcache_accesses: res.dcache_accesses,
            dcache_misses: res.dcache_misses,
        })
        .collect();
    SweepArtifact {
        kernel: kernel.to_string(),
        model: model.name().to_string(),
        lanes: cfgs.len() as u64,
        batch_cycles,
        lane_cycles,
        host: SweepHost {
            batched_wall_seconds: round_us(batched_wall),
            solo_wall_seconds: round_us(solo_wall),
            speedup: round_us(solo_wall / batched_wall.max(1e-9)),
        },
    }
    .with_points(points)
}

/// A unit result travelling back through `parallel_map`: the artifact
/// row plus its points (kept together so report assembly stays ordered).
struct UnitResult {
    artifact: SweepArtifact,
    points: Vec<SweepPoint>,
}

impl SweepArtifact {
    fn with_points(self, points: Vec<SweepPoint>) -> UnitResult {
        UnitResult {
            artifact: self,
            points,
        }
    }
}

/// Runs the sweep over every (kernel × model) artifact of the grid.
///
/// # Panics
///
/// Panics on any kernel load, compile, or machine failure, on a lane
/// diverging from its solo run, and on golden-model divergence — a
/// sweep result must never describe broken code.
pub fn run_sweep(params: &SweepParams) -> SweepReport {
    let grid = &params.grid;
    let mut units = Vec::new();
    for kernel in &grid.kernels {
        for &model in &grid.models {
            units.push((kernel.clone(), model));
        }
    }
    let cache = ArtifactCache::new();
    let results = parallel_map(&units, params.jobs, |(kernel, model)| {
        run_unit(kernel, *model, grid, &cache)
    });

    let mut points = Vec::new();
    let mut artifacts = Vec::new();
    let (mut batched, mut solo) = (0.0f64, 0.0f64);
    for r in results {
        batched += r.artifact.host.batched_wall_seconds;
        solo += r.artifact.host.solo_wall_seconds;
        artifacts.push(r.artifact);
        points.extend(r.points);
    }
    let sim_cycles_total = points.iter().map(|p: &SweepPoint| p.cycles).sum();
    let mut report = SweepReport {
        suite: if params.quick { "quick" } else { "full" }.to_string(),
        grid: grid.clone(),
        lanes_total: points.len() as u64,
        points,
        artifacts,
        sim_cycles_total,
        host: SweepHost {
            batched_wall_seconds: round_us(batched),
            solo_wall_seconds: round_us(solo),
            speedup: round_us(solo / batched.max(1e-9)),
        },
    };
    if params.deterministic {
        report.zero_host();
    }
    report
}

#[allow(clippy::type_complexity)]
fn point_key(j: &Json) -> Option<(String, String, i64, i64, String, i64, String, String)> {
    Some((
        j.get("kernel")?.as_str()?.to_string(),
        j.get("model")?.as_str()?.to_string(),
        j.get("width")?.as_i64()?,
        j.get("sb")?.as_i64()?,
        j.get("scan")?.as_str()?.to_string(),
        j.get("latency")?.as_i64()?,
        j.get("icache")?.as_str()?.to_string(),
        j.get("dcache")?.as_str()?.to_string(),
    ))
}

/// Compares `current` against the checked-in sweep baseline document.
///
/// The schema version, suite and grid must agree, and every baseline
/// point's deterministic counters must match exactly — anything else is
/// a hard failure.  The aggregate speedup is host-dependent: it only
/// warns when both sides carry timings and the current run regressed by
/// more than `tolerance` (relative).
pub fn check_sweep(current: &SweepReport, baseline: &Json, tolerance: f64) -> BenchCheck {
    let mut check = BenchCheck::default();

    match baseline.get("schema_version").and_then(Json::as_str) {
        Some(v) if v == SWEEP_SCHEMA_VERSION => {}
        Some(v) => check.failures.push(format!(
            "schema_version mismatch: baseline {v:?}, current {SWEEP_SCHEMA_VERSION:?}"
        )),
        None => check
            .failures
            .push("baseline has no schema_version".to_string()),
    }
    match baseline.get("suite").and_then(Json::as_str) {
        Some(s) if s == current.suite => {}
        Some(s) => check.failures.push(format!(
            "suite mismatch: baseline ran {s:?}, current ran {:?}",
            current.suite
        )),
        None => check.failures.push("baseline has no suite".to_string()),
    }
    match baseline.get("grid") {
        Some(g) if g.pretty() == current.grid.to_json().pretty() => {}
        Some(_) => check.failures.push(
            "grid mismatch: the baseline swept a different grid (rebaseline deliberately)"
                .to_string(),
        ),
        None => check.failures.push("baseline has no grid".to_string()),
    }

    let empty = Vec::new();
    let base_points = baseline
        .get("points")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    if base_points.is_empty() {
        check.failures.push("baseline has no points".to_string());
    }
    let mut matched = 0usize;
    for bp in base_points {
        let Some(key) = point_key(bp) else {
            check
                .failures
                .push("baseline point is missing identity fields".to_string());
            continue;
        };
        let label = format!(
            "{}/{}/w{}/sb{}/{}/lat{}/i{}/d{}",
            key.0, key.1, key.2, key.3, key.4, key.5, key.6, key.7
        );
        let Some(cur) = current.points.iter().find(|p| {
            p.kernel == key.0
                && p.model == key.1
                && p.width as i64 == key.2
                && p.sb as i64 == key.3
                && p.scan == key.4
                && p.latency as i64 == key.5
                && p.icache == key.6
                && p.dcache == key.7
        }) else {
            check
                .failures
                .push(format!("{label}: point missing from current run"));
            continue;
        };
        matched += 1;
        for field in POINT_COUNTERS {
            let got = cur.counter(field);
            match bp.get(field).and_then(Json::as_i64) {
                Some(want) if want == got as i64 => {}
                Some(want) => check.failures.push(format!(
                    "{label}: determinism breakage: {field} was {want}, now {got}"
                )),
                None => check
                    .failures
                    .push(format!("{label}: baseline point lacks {field}")),
            }
        }
    }
    if matched < current.points.len() {
        check.notes.push(format!(
            "{} point(s) in the current run are not in the baseline",
            current.points.len() - matched
        ));
    }

    let base_speedup = baseline
        .get("totals")
        .and_then(|t| t.get("host"))
        .and_then(|h| h.get("speedup"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let cur_speedup = current.host.speedup;
    if base_speedup > 0.0 && cur_speedup > 0.0 {
        if cur_speedup < base_speedup * (1.0 - tolerance) {
            check.warnings.push(format!(
                "aggregate batching speedup regressed: baseline {base_speedup:.2}x, \
                 current {cur_speedup:.2}x"
            ));
        }
    } else {
        check.notes.push(
            "speedup comparison skipped: baseline or current run has zeroed host \
             timings (--deterministic); counters were still checked"
                .to_string(),
        );
    }
    check
}

/// Renders a human-readable summary (stderr companion to the JSON).
pub fn render_sweep(report: &SweepReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(
        s,
        "Sweep suite `{}`: {} points ({} artifacts x {} lanes), {} simulated cycles",
        report.suite,
        report.points.len(),
        report.artifacts.len(),
        report.grid.lane_axes().len(),
        report.sim_cycles_total
    )
    .unwrap();
    writeln!(
        s,
        "{:<9} {:<12} {:>5} {:>11} {:>11} {:>9} {:>9} {:>8}",
        "kernel", "model", "lanes", "batch cyc", "lane cyc", "batch(s)", "solo(s)", "speedup"
    )
    .unwrap();
    for a in &report.artifacts {
        writeln!(
            s,
            "{:<9} {:<12} {:>5} {:>11} {:>11} {:>9.4} {:>9.4} {:>7.2}x",
            a.kernel,
            a.model,
            a.lanes,
            a.batch_cycles,
            a.lane_cycles,
            a.host.batched_wall_seconds,
            a.host.solo_wall_seconds,
            a.host.speedup
        )
        .unwrap();
    }
    writeln!(
        s,
        "aggregate: batched {:.4}s vs point-at-a-time {:.4}s = {:.2}x",
        report.host.batched_wall_seconds, report.host.solo_wall_seconds, report.host.speedup
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            kernels: vec!["dotprod".to_string()],
            models: vec![Model::RegionPred],
            widths: vec![4],
            sb: vec![4, 16],
            scans: vec![CommitScan::Naive, CommitScan::Indexed],
            latencies: vec![2, 4],
            icaches: vec![None],
            dcaches: vec![None],
            batch_width: 3, // deliberately not a divisor of the 8 lanes
        }
    }

    fn tiny_params(jobs: usize) -> SweepParams {
        SweepParams {
            quick: true,
            deterministic: true,
            jobs,
            grid: tiny_grid(),
        }
    }

    #[test]
    fn grid_parse_overrides_only_named_dimensions() {
        let g = parse_grid("sb=2,8;scan=naive;batch=5", SweepGrid::quick()).unwrap();
        assert_eq!(g.sb, vec![2, 8]);
        assert_eq!(g.scans, vec![CommitScan::Naive]);
        assert_eq!(g.batch_width, 5);
        // Untouched dimensions keep the base values.
        assert_eq!(g.kernels, SweepGrid::quick().kernels);
        assert_eq!(g.latencies, SweepGrid::quick().latencies);
        let g = parse_grid("model=all;kernel=gcd,sort", SweepGrid::quick()).unwrap();
        assert_eq!(g.models.len(), Model::ALL.len());
        assert_eq!(g.kernels, vec!["gcd", "sort"]);
    }

    #[test]
    fn grid_parse_expands_ranges() {
        let g = parse_grid("sb=1..64:pow2;latency=1..8", SweepGrid::quick()).unwrap();
        assert_eq!(g.sb, vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(g.latencies, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // Ranges and plain values mix in one list.
        let g = parse_grid("width=2,4..6", SweepGrid::quick()).unwrap();
        assert_eq!(g.widths, vec![2, 4, 5, 6]);
        // A pow2 range keeps its (possibly non-power-of-two) start.
        let g = parse_grid("sb=3..20:pow2", SweepGrid::quick()).unwrap();
        assert_eq!(g.sb, vec![3, 6, 12]);
    }

    #[test]
    fn grid_parse_reads_cache_axes() {
        let g = parse_grid(
            "icache=off,8x1x2x1x4;dcache=64x2x4x1x10",
            SweepGrid::quick(),
        )
        .unwrap();
        assert_eq!(g.icaches.len(), 2);
        assert_eq!(g.icaches[0], None);
        assert_eq!(cache_axis_name(&g.icaches[1]), "8x1x2x1x4");
        assert_eq!(g.dcaches.len(), 1);
        assert_eq!(cache_axis_name(&g.dcaches[0]), "64x2x4x1x10");
    }

    #[test]
    fn grid_parse_rejects_bad_specs() {
        for bad in [
            "frobnicate=1",
            "sb=",
            "sb=0",
            "sb=four",
            "width",
            "scan=quantum",
            "kernel=nope",
            "model=nope",
            "batch=2,4",
            "sb=8..2",
            "latency=1..8:fib",
            "latency=1..9999",
            "icache=8x1x2",
            "dcache=0x1x1x1x1",
        ] {
            assert!(parse_grid(bad, SweepGrid::quick()).is_err(), "{bad}");
        }
    }

    #[test]
    fn lane_axes_order_is_fixed_and_exhaustive() {
        let axes = tiny_grid().lane_axes();
        assert_eq!(axes.len(), 8);
        assert_eq!(
            axes[0],
            LaneAxis {
                width: 4,
                sb: 4,
                scan: CommitScan::Naive,
                latency: 2,
                icache: None,
                dcache: None,
            }
        );
        assert_eq!(
            axes[7],
            LaneAxis {
                width: 4,
                sb: 16,
                scan: CommitScan::Indexed,
                latency: 4,
                icache: None,
                dcache: None,
            }
        );
        assert_eq!(axes[0].memory(), MemoryModel::Perfect);
        let cached = LaneAxis {
            dcache: Some(CacheConfig::small()),
            ..axes[0]
        };
        assert!(matches!(cached.memory(), MemoryModel::Cache { .. }));
    }

    #[test]
    fn cache_axes_sweep_reports_miss_counters() {
        let mut grid = tiny_grid();
        grid.latencies = vec![2];
        grid.sb = vec![4];
        grid.scans = vec![CommitScan::Indexed];
        grid.icaches = vec![None, Some(CacheConfig::parse("8x1x2x1x4").unwrap())];
        grid.dcaches = vec![None, Some(CacheConfig::parse("4x2x2x1x6").unwrap())];
        let report = run_sweep(&SweepParams {
            quick: true,
            deterministic: true,
            jobs: 1,
            grid,
        });
        assert_eq!(report.points.len(), 4);
        let off = &report.points[0];
        assert_eq!((off.icache.as_str(), off.dcache.as_str()), ("off", "off"));
        assert_eq!(off.icache_accesses + off.dcache_accesses, 0);
        let cached = report
            .points
            .iter()
            .find(|p| p.icache != "off" && p.dcache != "off")
            .expect("fully cached point present");
        assert!(cached.icache_accesses > 0 && cached.dcache_accesses > 0);
        assert!(
            cached.icache_misses > 0,
            "a tiny icache must miss on a real kernel"
        );
        assert!(cached.stall_ifetch > 0, "icache misses must stall fetch");
        assert!(
            cached.cycles > off.cycles,
            "realistic memory cannot be free"
        );
    }

    #[test]
    fn sweep_report_is_jobs_invariant_and_self_checks() {
        let serial = run_sweep(&tiny_params(1));
        assert_eq!(serial.points.len(), 8);
        assert_eq!(serial.lanes_total, 8);
        assert!(serial.sim_cycles_total > 0);
        // --deterministic zeroed the host section.
        assert_eq!(serial.host, SweepHost::default());
        // The sb dimension actually moves a counter somewhere, or the
        // grid is vacuous.
        assert!(
            serial
                .points
                .iter()
                .any(|p| p.stall_sb_full != serial.points[0].stall_sb_full
                    || p.cycles != serial.points[0].cycles),
            "grid dimensions changed nothing"
        );
        let parallel = run_sweep(&tiny_params(4));
        assert_eq!(
            serial.to_json().pretty(),
            parallel.to_json().pretty(),
            "sweep report must be byte-identical at any --jobs"
        );
        let baseline = Json::parse(&serial.to_json().pretty()).unwrap();
        let check = check_sweep(&serial, &baseline, 0.2);
        assert!(check.passed(), "{:?}", check.failures);
    }

    #[test]
    fn check_sweep_fails_on_drift_schema_and_grid_changes() {
        let report = run_sweep(&tiny_params(1));
        let baseline = Json::parse(&report.to_json().pretty()).unwrap();

        let mut drifted = report.clone();
        drifted.points[0].cycles += 1;
        let check = check_sweep(&drifted, &baseline, 0.2);
        assert!(!check.passed());
        assert!(check.failures[0].contains("determinism breakage"));

        let mut other_grid = report.clone();
        other_grid.grid.sb = vec![1];
        assert!(check_sweep(&other_grid, &baseline, 0.2)
            .failures
            .iter()
            .any(|f| f.contains("grid mismatch")));

        let mut doc = report.to_json();
        if let Json::Object(fields) = &mut doc {
            fields[0].1 = Json::Str("psb-sweep-v0".to_string());
        }
        assert!(!check_sweep(&report, &doc, 0.2).passed());

        let missing = SweepReport {
            points: report.points[1..].to_vec(),
            ..report.clone()
        };
        assert!(check_sweep(&missing, &baseline, 0.2)
            .failures
            .iter()
            .any(|f| f.contains("missing from current run")));
    }

    #[test]
    fn timed_runs_record_speedup_and_warn_on_regression() {
        let mut params = tiny_params(1);
        params.deterministic = false;
        let report = run_sweep(&params);
        assert!(report.host.batched_wall_seconds > 0.0);
        assert!(report.host.solo_wall_seconds > 0.0);
        assert!(report.host.speedup > 0.0);
        let baseline = Json::parse(&report.to_json().pretty()).unwrap();
        // A much slower "current" run warns (never hard-fails): wall
        // time is advisory on shared runners.
        let mut slow = report.clone();
        slow.host.speedup = report.host.speedup / 10.0;
        let check = check_sweep(&slow, &baseline, 0.2);
        assert!(check.passed(), "{:?}", check.failures);
        assert!(
            check
                .warnings
                .iter()
                .any(|w| w.contains("speedup regressed")),
            "{:?}",
            check.warnings
        );
    }
}
