//! The `repro fuzz` runner: parallel fan-out of the `psb-fuzz`
//! differential driver with a deterministic report.
//!
//! Cases are numbered `0..runs`; case `i` is generated from
//! `mix(seed, i)` (a splitmix64 finalizer), so the case stream depends
//! only on `--seed` and the report is byte-identical at any `--jobs`
//! count.  Failing cases are shrunk and written into the regression
//! corpus after the sweep, in case order.  Wall-clock timing goes to
//! stderr so it never perturbs the report; with `--time-budget` the
//! number of cases executed is necessarily machine-dependent (the sweep
//! stops at the first chunk boundary past the budget), so fixed `--runs`
//! sweeps are the mode CI compares byte-for-byte.

use crate::runner::parallel_map_t;
use psb_core::Engine;
use psb_fuzz::{gen_case, run_case, shrink_case, write_repro, CaseStats, DiffConfig, FuzzFailure};
use psb_telemetry::{NullTelemetry, Telemetry};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Parameters of one fuzz sweep.
#[derive(Clone, Debug)]
pub struct FuzzParams {
    /// Base seed; case `i` uses `mix(seed, i)`.
    pub seed: u64,
    /// Number of cases (the cap, when a time budget is also given).
    pub runs: usize,
    /// Optional wall-clock budget in seconds; checked between chunks.
    pub time_budget: Option<f64>,
    /// Worker threads for the case sweep.
    pub jobs: usize,
    /// Where minimized repros of failing cases are written.
    pub corpus_dir: PathBuf,
    /// Activate the machine's test-only deferred-recovery-exit-commit bug.
    pub inject_recovery_bug: bool,
    /// Issue engine driving the VLIW side of every case (the nightly
    /// sweep rotates this so each engine gets long-run fuzz coverage).
    pub engine: Engine,
}

impl Default for FuzzParams {
    fn default() -> FuzzParams {
        FuzzParams {
            seed: 1,
            runs: 200,
            time_budget: None,
            jobs: 1,
            corpus_dir: PathBuf::from("corpus/regressions"),
            inject_recovery_bug: false,
            engine: Engine::default(),
        }
    }
}

/// The result of a fuzz sweep.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// The deterministic report (stdout).
    pub report: String,
    /// Cases executed.
    pub cases: usize,
    /// Cases that failed.
    pub failures: usize,
}

/// splitmix64 finalizer: decorrelates per-case seeds from the base seed
/// so adjacent cases share no generator state.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the sweep described by `p` and renders the report.
pub fn run_fuzz(p: &FuzzParams) -> FuzzOutcome {
    run_fuzz_t(p, &NullTelemetry)
}

/// [`run_fuzz`] with instrumentation: per-case task spans flow into
/// `tel`, plus `fuzz.cases` / `fuzz.failures` counters.  With a fixed
/// `--runs` the counters are jobs-deterministic; a `--time-budget`
/// sweep stops at a machine-dependent chunk boundary, so its telemetry
/// (like its report) is only comparable on one host.
pub fn run_fuzz_t<T: Telemetry>(p: &FuzzParams, tel: &T) -> FuzzOutcome {
    let cfg = DiffConfig {
        inject_recovery_bug: p.inject_recovery_bug,
        engine: p.engine,
        ..DiffConfig::default()
    };
    let start = Instant::now();
    let budget = p.time_budget.map(Duration::from_secs_f64);

    let mut results: Vec<(usize, u64, Result<CaseStats, FuzzFailure>)> = Vec::new();
    let mut next = 0usize;
    while next < p.runs {
        if let Some(b) = budget {
            if start.elapsed() >= b {
                break;
            }
        }
        let chunk_len = if budget.is_some() {
            (p.jobs * 8).max(32).min(p.runs - next)
        } else {
            p.runs - next
        };
        let idxs: Vec<usize> = (next..next + chunk_len).collect();
        let chunk = parallel_map_t(
            &idxs,
            p.jobs,
            tel,
            |_, &i| format!("case{i}"),
            |&i| {
                let case_seed = mix(p.seed, i as u64);
                (case_seed, run_case(&gen_case(case_seed), &cfg))
            },
        );
        for (&i, (case_seed, r)) in idxs.iter().zip(chunk) {
            results.push((i, case_seed, r));
        }
        next += chunk_len;
    }
    let elapsed = start.elapsed();

    let mut totals = CaseStats::default();
    let mut failures = Vec::new();
    for (i, case_seed, r) in &results {
        match r {
            Ok(s) => {
                totals.recoveries += s.recoveries;
                totals.faults += s.faults;
                totals.commits += s.commits;
                totals.squashes += s.squashes;
            }
            Err(f) => failures.push((*i, *case_seed, f.clone())),
        }
    }

    let mut report = String::new();
    let model_names: Vec<&str> = cfg.models.iter().map(|m| m.name()).collect();
    writeln!(report, "psb-fuzz differential report").unwrap();
    writeln!(report, "  seed           {}", p.seed).unwrap();
    writeln!(report, "  cases          {}", results.len()).unwrap();
    writeln!(
        report,
        "  models         {} ({})",
        model_names.len(),
        model_names.join(" ")
    )
    .unwrap();
    writeln!(
        report,
        "  engine         {}",
        crate::bench::engine_name(p.engine)
    )
    .unwrap();
    writeln!(
        report,
        "  injected bug   {}",
        if p.inject_recovery_bug { "yes" } else { "no" }
    )
    .unwrap();
    writeln!(report, "  recoveries     {}", totals.recoveries).unwrap();
    writeln!(report, "  faults handled {}", totals.faults).unwrap();
    writeln!(report, "  commits        {}", totals.commits).unwrap();
    writeln!(report, "  squashes       {}", totals.squashes).unwrap();
    writeln!(report, "  failures       {}", failures.len()).unwrap();

    for (i, case_seed, failure) in &failures {
        writeln!(report).unwrap();
        writeln!(report, "FAIL case {i} (seed {case_seed:#018x}): {failure}").unwrap();
        let case = gen_case(*case_seed);
        match shrink_case(&case, &cfg) {
            Some((small, small_failure)) => {
                let note = format!("{small_failure}");
                match write_repro(&p.corpus_dir, &small, Some(&note)) {
                    Ok(path) => writeln!(
                        report,
                        "  minimized to {} instructions ({}): {small_failure}",
                        small.instruction_count(),
                        path.display()
                    )
                    .unwrap(),
                    Err(e) => writeln!(report, "  corpus write failed: {e}").unwrap(),
                }
            }
            None => writeln!(report, "  did not reproduce under the shrink cycle cap").unwrap(),
        }
    }

    tel.counter("fuzz.cases", results.len() as u64);
    tel.counter("fuzz.failures", failures.len() as u64);

    eprintln!(
        "fuzz: {} cases in {:.2}s ({:.0} cases/s, {} jobs)",
        results.len(),
        elapsed.as_secs_f64(),
        results.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        p.jobs
    );
    FuzzOutcome {
        report,
        cases: results.len(),
        failures: failures.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> FuzzParams {
        FuzzParams {
            runs: 24,
            corpus_dir: std::env::temp_dir().join(format!("psb-fuzz-out-{}", std::process::id())),
            ..FuzzParams::default()
        }
    }

    #[test]
    fn report_is_byte_identical_across_job_counts() {
        let p1 = quick_params();
        let p4 = FuzzParams {
            jobs: 4,
            ..p1.clone()
        };
        let a = run_fuzz(&p1);
        let b = run_fuzz(&p4);
        assert_eq!(a.report, b.report);
        assert_eq!(a.failures, 0, "{}", a.report);
    }

    #[test]
    fn injected_bug_is_reported_and_minimized() {
        let dir = std::env::temp_dir().join(format!("psb-fuzz-inj-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = FuzzParams {
            runs: 40,
            inject_recovery_bug: true,
            corpus_dir: dir.clone(),
            ..FuzzParams::default()
        };
        let out = run_fuzz(&p);
        assert!(
            out.failures > 0,
            "injected bug went unnoticed:\n{}",
            out.report
        );
        assert!(out.report.contains("minimized to"), "{}", out.report);
        let corpus = psb_fuzz::load_corpus(&dir).unwrap();
        assert!(!corpus.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
