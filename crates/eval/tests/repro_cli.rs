//! End-to-end tests of the `repro trace` / `repro profile` subcommands:
//! the PR-1 determinism contract (byte-identical output at any `--jobs`
//! count) and well-formedness of the emitted JSON, checked with a
//! minimal hand-rolled parser (the container has no serde).

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro spawns")
}

fn stdout_of(args: &[&str]) -> String {
    let out = repro(args);
    assert!(
        out.status.success(),
        "repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

// --- shared JSON parser ------------------------------------------------

use psb_eval::Json;

/// Asserts `text` is one well-formed JSON document and returns it
/// decoded.  (This used to be a second hand-rolled parser; it now goes
/// through the shared `psb_serve::json` module like everything else.)
fn assert_json(text: &str) -> Json {
    Json::parse(text)
        .unwrap_or_else(|e| panic!("invalid JSON: {e}\n{}", &text[..text.len().min(400)]))
}

// --- the tests -----------------------------------------------------------

#[test]
fn trace_is_jobs_deterministic_and_well_formed() {
    let base = &["trace", "--size", "96", "--workload", "grep"];
    let one = stdout_of(&[base, &["--jobs", "1"][..]].concat());
    let four = stdout_of(&[base, &["--jobs", "4"][..]].concat());
    assert_eq!(
        one, four,
        "trace output must be byte-identical across --jobs"
    );
    // The subcommand prints the document plus the section-separator blank
    // line; the document itself must be valid JSON with the trace keys.
    let doc = one.trim_end();
    assert_json(doc);
    assert!(doc.contains("\"traceEvents\""));
    assert!(doc.contains("\"ph\": \"X\""), "expected duration spans");
    assert!(doc.contains("grep/region-pred"));
}

#[test]
fn profile_is_jobs_deterministic_and_well_formed() {
    let base = &["profile", "--json", "--size", "96"];
    let one = stdout_of(&[base, &["--jobs", "1"][..]].concat());
    let four = stdout_of(&[base, &["--jobs", "4"][..]].concat());
    assert_eq!(
        one, four,
        "profile output must be byte-identical across --jobs"
    );
    let doc = one.trim_end();
    assert_json(doc);
    for key in [
        "\"shadow_occupancy\"",
        "\"lifetime\"",
        "\"stall_runs\"",
        "\"high_water\"",
        "\"regions\"",
    ] {
        assert!(doc.contains(key), "missing {key}");
    }
    // All six benchmarks present by default.
    for w in ["compress", "eqntott", "espresso", "grep", "li", "nroff"] {
        assert!(
            doc.contains(&format!("\"workload\": \"{w}\"")),
            "missing {w}"
        );
    }
}

#[test]
fn out_flag_writes_the_file() {
    let dir = std::env::temp_dir().join("repro_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let args = [
        "trace",
        "--size",
        "96",
        "--workload",
        "li",
        "--model",
        "trace-pred",
        "--out",
        path.to_str().unwrap(),
    ];
    let out = repro(&args);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).unwrap();
    assert_json(text.trim_end());
    assert!(text.contains("li/trace-pred"));
}

#[test]
fn profile_text_mode_reports_hotspots() {
    let text = stdout_of(&["profile", "--size", "96", "--workload", "espresso"]);
    assert!(text.contains("espresso/region-pred:"));
    assert!(text.contains("occupancy"));
    assert!(text.contains("lifetime"));
    assert!(text.contains("hottest regions"));
}

#[test]
fn bench_baseline_matches_the_schema() {
    // The committed CI baseline doubles as the schema fixture: `repro
    // bench --check` diffs new reports against it field by field, so any
    // drift in the emitter shows up here first.  (The bench itself runs
    // in release CI; re-running it under a debug test binary would blow
    // the tier-1 time budget.)
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../baselines/bench_baseline.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let doc = text.trim_end();
    assert_json(doc);
    // Document-level schema.
    assert!(doc.contains("\"schema_version\": 3"), "schema_version");
    assert!(doc.contains("\"suite\": \"quick\""), "quick suite baseline");
    assert!(doc.contains("\"memory\": \"perfect\""), "memory model");
    for key in ["\"points\"", "\"totals\"", "\"kernel_suite\""] {
        assert!(doc.contains(key), "missing {key}");
    }
    // Per-point schema.
    for key in [
        "\"kind\"",
        "\"name\"",
        "\"model\"",
        "\"engine\"",
        "\"iterations\"",
        "\"cycles\"",
        "\"commits\"",
        "\"squashes\"",
        "\"recoveries\"",
        "\"stall_ifetch\"",
        "\"stall_load_miss\"",
        "\"icache_accesses\"",
        "\"icache_misses\"",
        "\"dcache_accesses\"",
        "\"dcache_misses\"",
        "\"host\"",
        "\"profile_seconds\"",
        "\"schedule_seconds\"",
        "\"decode_seconds\"",
        "\"wall_seconds\"",
        "\"cycles_per_second\"",
    ] {
        assert!(doc.contains(key), "missing point key {key}");
    }
    // Totals carry the headline aggregate and the host footprint.
    for key in [
        "\"sim_cycles_total\"",
        "\"wall_seconds_total\"",
        "\"peak_rss_kb\"",
    ] {
        assert!(doc.contains(key), "missing totals key {key}");
    }
    // The fixed matrix must cover all four kernels and all six workloads.
    for name in ["dotprod", "gcd"] {
        assert!(
            doc.contains(&format!("\"name\": \"{name}\"")),
            "kernel {name}"
        );
    }
    for w in ["compress", "eqntott", "espresso", "grep", "li", "nroff"] {
        assert!(doc.contains(&format!("\"name\": \"{w}\"")), "workload {w}");
    }
}

#[test]
fn bench_deterministic_is_byte_stable_and_zeroes_host_timings() {
    // `--deterministic` must zero every host-side (wall-clock) field so
    // byte-equality comparisons across runs and machines are meaningful.
    // `--target-cycles` shrinks the per-point budget: this binary is a
    // debug build, and the simulated work is identical at any budget.
    let base = &[
        "bench",
        "--quick",
        "--deterministic",
        "--target-cycles",
        "1000",
    ];
    let one = stdout_of(base);
    let two = stdout_of(base);
    assert_eq!(
        one, two,
        "deterministic bench output must be byte-identical across runs"
    );
    let doc = one.trim_end();
    assert_json(doc);
    assert!(doc.contains("\"wall_seconds\": 0"), "wall not zeroed");
    assert!(doc.contains("\"cycles_per_second\": 0"), "rate not zeroed");
    assert!(doc.contains("\"profile_seconds\": 0"), "profile not zeroed");
    assert!(
        doc.contains("\"schedule_seconds\": 0"),
        "schedule not zeroed"
    );
    assert!(doc.contains("\"decode_seconds\": 0"), "decode not zeroed");
    assert!(doc.contains("\"peak_rss_kb\": 0"), "rss not zeroed");
    assert!(doc.contains("\"suite\": \"quick\""), "quick suite expected");
    assert!(doc.contains("\"engine\": \"tabled\""), "default engine");
}

#[test]
fn bench_engines_agree_cycle_for_cycle() {
    // Under `--deterministic` the only engine-dependent report field is
    // the engine name itself: renaming it must make single-engine runs
    // byte-identical, because every counter (cycles, commits, squashes,
    // recoveries, iterations) is engine-independent by construction.
    let run = |engine: &str| {
        stdout_of(&[
            "bench",
            "--quick",
            "--deterministic",
            "--target-cycles",
            "1000",
            "--engine",
            engine,
        ])
    };
    let tabled = run("tabled");
    let predecoded = run("predecoded");
    let legacy = run("legacy");
    assert_eq!(
        tabled,
        predecoded.replace("\"engine\": \"predecoded\"", "\"engine\": \"tabled\""),
        "tabled and predecoded engines disagree"
    );
    assert_eq!(
        tabled,
        legacy.replace("\"engine\": \"legacy\"", "\"engine\": \"tabled\""),
        "tabled and legacy engines disagree"
    );
}

#[test]
fn bench_check_skips_wall_drift_against_deterministic_baselines() {
    // A zeroed (--deterministic) baseline must not produce phantom
    // wall-drift warnings; the check says explicitly that the wall
    // comparison was skipped and still exits 0.
    let dir = std::env::temp_dir().join("repro_cli_bench_check");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("bench_baseline.json");
    let base = &[
        "bench",
        "--quick",
        "--deterministic",
        "--target-cycles",
        "1000",
    ];
    stdout_of(&[base, &["--out", baseline.to_str().unwrap()][..]].concat());
    let out = repro(&[base, &["--check", baseline.to_str().unwrap()][..]].concat());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "check failed:\n{stderr}");
    assert!(
        stderr.contains("wall-time comparison skipped"),
        "missing skip note:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("::warning"),
        "phantom wall-drift warnings:\n{stdout}"
    );
}

#[test]
fn compile_sweep_is_jobs_deterministic_and_counts_misses() {
    // 2 workloads × 7 models = 14 distinct artifacts; the single-flight
    // cache must report exactly 14 misses at any --jobs count, with the
    // whole document byte-identical.
    let base = &[
        "compile",
        "--workload",
        "grep,li",
        "--model",
        "all",
        "--json",
        "--deterministic",
        "--size",
        "96",
    ];
    let one = stdout_of(&[base, &["--jobs", "1"][..]].concat());
    let four = stdout_of(&[base, &["--jobs", "4"][..]].concat());
    assert_eq!(
        one, four,
        "compile output must be byte-identical across --jobs"
    );
    let doc = one.trim_end();
    assert_json(doc);
    assert!(doc.contains("\"misses\": 14"), "expected exactly 14 misses");
    assert!(doc.contains("\"hits\": 0"), "sweep points are all distinct");
    assert!(doc.contains("\"entries\": 14"), "14 cached artifacts");
    // The scalar training run is shared across the seven models of each
    // workload by the profile-stage memo.
    assert!(
        doc.contains("\"profile_misses\": 2"),
        "one train run per workload"
    );
    assert!(
        doc.contains("\"content_hash\""),
        "rows carry artifact hashes"
    );
    assert!(doc.contains("\"profile_seconds\": 0"), "host zeroed");
}

#[test]
fn bad_selections_exit_with_usage() {
    for args in [
        &["trace", "--workload", "nope"][..],
        &["profile", "--model", "nonsense"][..],
        &["trace", "--out"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }
}

#[test]
fn jobs_zero_is_rejected_with_a_typed_error() {
    // The parse is hoisted ahead of dispatch (`psb_eval::Cli`), so the
    // rejection must hold for every subcommand — including the server
    // ones, which would otherwise spin up a pool with zero workers.
    for sub in [
        "bench", "compile", "fuzz", "trace", "profile", "serve", "loadgen",
    ] {
        let out = repro(&[sub, "--jobs", "0"]);
        assert_eq!(out.status.code(), Some(2), "{sub} --jobs 0 must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("invalid --jobs value '0'"),
            "{sub}: missing typed error:\n{stderr}"
        );
    }
}

#[test]
fn compile_store_fills_from_disk_across_processes() {
    // The cross-process persistence contract: a second `repro compile
    // --store DIR` process (fresh memory cache) must fill every point
    // from disk instead of recompiling.
    let dir = std::env::temp_dir().join(format!("repro_cli_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = &[
        "compile",
        "--workload",
        "grep",
        "--model",
        "all",
        "--size",
        "96",
        "--json",
        "--deterministic",
        "--store",
        dir.to_str().unwrap(),
    ];
    let first = assert_json(stdout_of(base).trim_end());
    let second = assert_json(stdout_of(base).trim_end());
    let sources = |doc: &Json| -> Vec<String> {
        doc.get("rows")
            .and_then(Json::as_array)
            .expect("rows")
            .iter()
            .map(|r| {
                r.get("source")
                    .and_then(Json::as_str)
                    .expect("source")
                    .to_string()
            })
            .collect()
    };
    assert_eq!(
        sources(&first),
        vec!["compiled"; 7],
        "first process compiles"
    );
    assert_eq!(sources(&second), vec!["disk"; 7], "second process loads");
    let store = |doc: &Json, key: &str| {
        doc.get("store")
            .and_then(|s| s.get(key))
            .and_then(Json::as_i64)
            .unwrap_or(-1)
    };
    assert_eq!(store(&first, "writes"), 7);
    assert_eq!(store(&first, "misses"), 7);
    assert_eq!(store(&second, "hits"), 7);
    assert_eq!(store(&second, "writes"), 0);
    assert_eq!(store(&second, "errors"), 0);
    // Content hashes are process-independent.
    let hashes = |doc: &Json| -> Vec<String> {
        doc.get("rows")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|r| {
                r.get("content_hash")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect()
    };
    assert_eq!(hashes(&first), hashes(&second));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Boots `repro serve` on an ephemeral port and returns the child plus
/// the bound address parsed from its stderr banner.
fn spawn_server(extra: &[&str]) -> (std::process::Child, String) {
    use std::io::BufRead as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(
            [
                &["serve", "--addr", "127.0.0.1:0", "--deterministic"][..],
                extra,
            ]
            .concat(),
        )
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before its banner")
            .expect("stderr readable");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest.trim().to_string();
        }
    };
    // Keep draining stderr in the background so the child never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn loadgen_report_is_byte_identical_at_any_jobs() {
    // The acceptance criterion of the serve PR: a fixed-seed loadgen run
    // produces a byte-identical latency report at any --jobs, with zero
    // failed requests and a mix-phase hit rate >= 90%.  Fresh server per
    // run so both start cache-cold.
    let drive = |jobs: &str| -> String {
        let (mut child, addr) = spawn_server(&["--jobs", "2"]);
        let report = stdout_of(&[
            "loadgen",
            "--addr",
            &addr,
            "--requests",
            "64",
            "--jobs",
            jobs,
            "--seed",
            "42",
            "--deterministic",
        ]);
        child.kill().expect("server stops");
        let _ = child.wait();
        report
    };
    let one = drive("1");
    let four = drive("4");
    assert_eq!(
        one, four,
        "loadgen report must be byte-identical across --jobs"
    );
    let doc = assert_json(one.trim_end());
    assert_eq!(
        doc.get("failed").and_then(Json::as_i64),
        Some(0),
        "no failed requests"
    );
    let hit_rate = doc.get("mix_hit_rate").and_then(Json::as_f64).unwrap();
    assert!(hit_rate >= 0.9, "mix hit rate {hit_rate} < 0.9");
    // The warm phase did all 8 compiles; the mix phase hit memory.
    let warm_sources = doc.get("warm").and_then(|w| w.get("sources")).unwrap();
    assert_eq!(warm_sources.get("compiled").and_then(Json::as_i64), Some(8));
    let mix_sources = doc.get("mix").and_then(|m| m.get("sources")).unwrap();
    assert_eq!(mix_sources.get("memory").and_then(Json::as_i64), Some(64));
    assert_eq!(mix_sources.get("compiled").and_then(Json::as_i64), None);
}

#[test]
fn telemetry_deterministic_is_byte_identical_across_jobs() {
    // The headline contract of the telemetry subsystem: under
    // `--deterministic` the Perfetto trace and the metrics report must be
    // byte-identical at any `--jobs` count.  Span/record *counts* stay
    // jobs-deterministic; wall-clock payloads are zeroed; purely
    // host-dependent records (queue wait, worker utilization) are dropped.
    let dir = std::env::temp_dir().join("repro_cli_telemetry");
    std::fs::create_dir_all(&dir).unwrap();
    let run = |jobs: &str, tag: &str| {
        let trace = dir.join(format!("trace_{tag}.json"));
        let bench = dir.join(format!("bench_{tag}.json"));
        let out = repro(&[
            "bench",
            "--quick",
            "--deterministic",
            "--target-cycles",
            "1000",
            "--jobs",
            jobs,
            "--telemetry",
            trace.to_str().unwrap(),
            "--out",
            bench.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "bench --telemetry failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let report = dir.join(format!("trace_{tag}.json.report.json"));
        (
            std::fs::read_to_string(&trace).unwrap(),
            std::fs::read_to_string(&report).unwrap(),
        )
    };
    let (trace1, report1) = run("1", "j1");
    let (trace4, report4) = run("4", "j4");
    assert_eq!(
        trace1, trace4,
        "telemetry trace must be byte-identical across --jobs"
    );
    assert_eq!(
        report1, report4,
        "telemetry report must be byte-identical across --jobs"
    );
    assert_json(trace1.trim_end());
    assert_json(report1.trim_end());
    // The trace carries host spans (pid 0) and guest events (pid 1..).
    assert!(trace1.contains("\"traceEvents\""));
    assert!(trace1.contains("\"pid\": 0"), "host process missing");
    assert!(trace1.contains("\"pid\": 1"), "guest process missing");
    // The report carries the three instrumented layers.
    assert!(report1.contains("\"schema_version\": 1"));
    assert!(report1.contains("\"deterministic\": true"));
    assert!(report1.contains("compile.profile_ns"), "compile layer");
    assert!(report1.contains("pmap.task_ns"), "runner layer");
    assert!(report1.contains("bench.execute_ns"), "bench layer");
    assert!(report1.contains("cache.artifact.hits"), "cache counters");
    // Host-only records must be absent in deterministic mode.
    assert!(
        !report1.contains("pmap.queue_wait_ns"),
        "host-only histogram leaked into deterministic report"
    );
}
