//! Classic scalar clean-up passes: local copy propagation and global
//! dead-code elimination.
//!
//! The paper's global-scheduling model applies copy propagation after
//! register renaming and deletes copies whose value is no longer used
//! (Section 4.1, citing the dragon book).  Our schedulers propagate
//! renaming copies internally during lowering; these standalone passes
//! serve the scalar level — cleaning up generated or hand-written kernels
//! before scheduling (`psbsim --optimize`).

use crate::cfg::Cfg;
use crate::liveness::Liveness;
use psb_isa::{Op, Reg, ScalarProgram, Src, Terminator};
use std::collections::HashMap;

/// Local (block-level) copy propagation: rewrites uses of a copied
/// register to the copy's source while the source is provably unchanged.
/// Returns the number of rewritten operands.
pub fn copy_propagate(prog: &mut ScalarProgram) -> usize {
    let mut rewrites = 0;
    for block in &mut prog.blocks {
        // reg -> replacement source, invalidated on any redefinition of
        // either side.
        let mut map: HashMap<Reg, Src> = HashMap::new();
        let invalidate = |map: &mut HashMap<Reg, Src>, def: Reg| {
            map.retain(|k, v| *k != def && v.as_reg() != Some(def));
        };
        let subst = |map: &HashMap<Reg, Src>, rewrites: &mut usize, s: Src| -> Src {
            match s.as_reg().and_then(|r| map.get(&r)) {
                Some(&rep) => {
                    *rewrites += 1;
                    rep
                }
                None => s,
            }
        };
        for op in &mut block.instrs {
            *op = op.map_srcs(|s| subst(&map, &mut rewrites, s));
            if let Some(d) = op.def_reg() {
                invalidate(&mut map, d);
            }
            if let Op::Copy { rd, src } = *op {
                // Record the copy (a self-copy records nothing useful).
                if src.as_reg() != Some(rd) && !rd.is_zero() {
                    map.insert(rd, src);
                }
            }
        }
        if let Terminator::Branch { a, b, .. } = &mut block.term {
            *a = subst(&map, &mut rewrites, *a);
            *b = subst(&map, &mut rewrites, *b);
        }
    }
    rewrites
}

/// Global dead-code elimination: removes operations whose destination is
/// dead.  Stores are never removed (memory is observable); loads with
/// dead destinations are removed, which also removes their potential
/// exceptions — the standard compiler behaviour the paper's *unsafe*
/// discussion assumes.  Returns the number of removed operations.
pub fn dead_code_eliminate(prog: &mut ScalarProgram) -> usize {
    let mut removed = 0;
    loop {
        let cfg = Cfg::new(prog);
        let lv = Liveness::new(prog, &cfg);
        let mut changed = false;
        for (i, block) in prog.blocks.iter_mut().enumerate() {
            let id = psb_isa::BlockId(i as u32);
            if !cfg.is_reachable(id) {
                continue;
            }
            let mut live = lv.live_out(id);
            for r in block.term.used_regs() {
                live.insert(r);
            }
            let mut keep: Vec<bool> = vec![true; block.instrs.len()];
            for (j, op) in block.instrs.iter().enumerate().rev() {
                let dead = match op.def_reg() {
                    Some(d) => !live.contains(d),
                    None => false,
                };
                let removable = dead && !matches!(op, Op::Store { .. });
                if removable || matches!(op, Op::Nop) {
                    keep[j] = false;
                    changed = true;
                    removed += 1;
                    continue;
                }
                if let Some(d) = op.def_reg() {
                    live.remove(d);
                }
                for r in op.used_regs() {
                    live.insert(r);
                }
            }
            if changed {
                let mut it = keep.iter();
                block
                    .instrs
                    .retain(|_| *it.next().expect("keep mask aligned"));
            }
        }
        if !changed {
            return removed;
        }
    }
}

/// Convenience pipeline: copy propagation followed by dead-code
/// elimination, repeated to a fixed point.  Returns `(rewrites, removed)`.
pub fn optimize(prog: &mut ScalarProgram) -> (usize, usize) {
    let mut total = (0, 0);
    loop {
        let r = copy_propagate(prog);
        let d = dead_code_eliminate(prog);
        total.0 += r;
        total.1 += d;
        if r == 0 && d == 0 {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder};
    use psb_scalar::ScalarMachine;

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn propagates_and_removes_copies() {
        let mut pb = ProgramBuilder::new("cp");
        pb.memory_size(32);
        pb.init_reg(r(1), 5);
        let b = pb.new_block();
        pb.block_mut(b)
            .copy(r(2), r(1))
            .alu(AluOp::Add, r(3), r(2), 1) // should read r1
            .alu(AluOp::Mul, r(4), r(3), r(2)) // both rewritable
            .halt();
        pb.set_entry(b);
        pb.live_out([r(3), r(4)]);
        let mut p = pb.finish().unwrap();
        let before = ScalarMachine::run_to_completion(&p).unwrap();

        let (rewrites, removed) = optimize(&mut p);
        assert!(rewrites >= 2);
        assert_eq!(removed, 1, "the copy is dead after propagation");
        assert!(!p.blocks[0]
            .instrs
            .iter()
            .any(|o| matches!(o, Op::Copy { .. })));

        let after = ScalarMachine::run_to_completion(&p).unwrap();
        assert_eq!(
            after.observable(&p.live_out),
            before.observable(&p.live_out)
        );
        assert!(after.cycles < before.cycles);
    }

    #[test]
    fn invalidates_on_redefinition() {
        let mut pb = ProgramBuilder::new("inv");
        pb.memory_size(32);
        pb.init_reg(r(1), 5);
        let b = pb.new_block();
        pb.block_mut(b)
            .copy(r(2), r(1))
            .alu(AluOp::Add, r(1), r(1), 10) // r1 changes: the copy is stale
            .alu(AluOp::Add, r(3), r(2), 0) // must NOT become r1
            .halt();
        pb.set_entry(b);
        pb.live_out([r(3)]);
        let mut p = pb.finish().unwrap();
        let before = ScalarMachine::run_to_completion(&p).unwrap();
        copy_propagate(&mut p);
        let after = ScalarMachine::run_to_completion(&p).unwrap();
        assert_eq!(after.regs[3], before.regs[3]);
        assert_eq!(after.regs[3], 5);
    }

    #[test]
    fn dce_removes_dead_chains_but_keeps_stores() {
        let mut pb = ProgramBuilder::new("dce");
        pb.memory_size(32);
        let b = pb.new_block();
        pb.block_mut(b)
            .alu(AluOp::Add, r(1), 1, 2) // dead chain head
            .alu(AluOp::Add, r(2), r(1), 3) // dead chain tail
            .load(r(3), 4, 0, MemTag::ANY) // dead load: removed
            .alu(AluOp::Add, r(4), 5, 6) // live
            .store(8, 0, r(4), MemTag::ANY) // store: kept
            .halt();
        pb.set_entry(b);
        pb.live_out([r(4)]);
        let mut p = pb.finish().unwrap();
        let removed = dead_code_eliminate(&mut p);
        assert_eq!(removed, 3);
        assert_eq!(p.blocks[0].instrs.len(), 2);
        let res = ScalarMachine::run_to_completion(&p).unwrap();
        assert_eq!(res.regs[4], 11);
        assert_eq!(res.memory.read(8).unwrap(), 11);
    }

    #[test]
    fn dce_respects_cross_block_liveness() {
        let mut pb = ProgramBuilder::new("xblock");
        pb.memory_size(32);
        pb.init_reg(r(5), 1);
        let a = pb.new_block();
        let t = pb.new_block();
        let e = pb.new_block();
        let j = pb.new_block();
        pb.block_mut(a)
            .alu(AluOp::Add, r(1), 10, 0) // live only on the taken path
            .branch(CmpOp::Eq, r(5), 1, t, e);
        pb.block_mut(t).alu(AluOp::Add, r(2), r(1), 1).jump(j);
        pb.block_mut(e).alu(AluOp::Add, r(2), 7, 0).jump(j);
        pb.block_mut(j).halt();
        pb.set_entry(a);
        pb.live_out([r(2)]);
        let mut p = pb.finish().unwrap();
        let removed = dead_code_eliminate(&mut p);
        assert_eq!(removed, 0, "r1 is live into the taken branch");
        let res = ScalarMachine::run_to_completion(&p).unwrap();
        assert_eq!(res.regs[2], 11);
    }

    #[test]
    fn optimize_preserves_workload_semantics() {
        // The kernels are hand-tight, so the passes should change little —
        // and must change nothing observable.
        for seed in [3u64, 17] {
            let w = psb_workloads_proxy(seed);
            let before = ScalarMachine::run_to_completion(&w).unwrap();
            let mut opt = w.clone();
            optimize(&mut opt);
            let after = ScalarMachine::run_to_completion(&opt).unwrap();
            assert_eq!(
                after.observable(&opt.live_out),
                before.observable(&w.live_out)
            );
        }
    }

    /// A miniature stand-in for a workload kernel (psb-ir cannot depend on
    /// psb-workloads without a cycle).
    fn psb_workloads_proxy(seed: u64) -> ScalarProgram {
        let mut pb = ProgramBuilder::new("proxy");
        pb.memory_size(64);
        for k in 1..32 {
            pb.mem_cell(k + 16, ((seed as i64).wrapping_mul(k) % 23) - 11);
        }
        pb.init_reg(r(8), 16);
        let entry = pb.new_block();
        let body = pb.new_block();
        let pos = pb.new_block();
        let neg = pb.new_block();
        let next = pb.new_block();
        let done = pb.new_block();
        pb.block_mut(entry).copy(r(1), 0).copy(r(2), 0).jump(body);
        pb.block_mut(body)
            .load(r(3), r(1), 17, MemTag(1))
            .branch(CmpOp::Ge, r(3), 0, pos, neg);
        pb.block_mut(pos)
            .alu(AluOp::Add, r(2), r(2), r(3))
            .jump(next);
        pb.block_mut(neg)
            .alu(AluOp::Sub, r(2), r(2), r(3))
            .jump(next);
        pb.block_mut(next)
            .alu(AluOp::Add, r(1), r(1), 1)
            .branch(CmpOp::Lt, r(1), r(8), body, done);
        pb.block_mut(done).halt();
        pb.set_entry(entry);
        pb.live_out([r(2)]);
        pb.finish().unwrap()
    }
}
