//! Dominator computation (Cooper–Harvey–Kennedy).

use crate::cfg::Cfg;
use psb_isa::BlockId;

/// The dominator tree of a CFG, computed with the Cooper–Harvey–Kennedy
/// iterative algorithm over reverse post-order.
///
/// Used to validate scheduling regions: a region's header must dominate
/// every block in the region (Section 3.3 of the paper), which guarantees
/// each block's path condition is expressible as the ANDed predicate form.
#[derive(Clone, PartialEq, Debug)]
pub struct Dominators {
    /// Immediate dominator per block (`idom[entry] == entry`); `None` for
    /// unreachable blocks.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for `cfg`.
    pub fn new(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry().index()] = Some(cfg.entry());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo() {
                if b == cfg.entry() {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(cfg, &idom, p, cur),
                    });
                }
                if new_idom != idom[b.index()] {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators {
            idom,
            entry: cfg.entry(),
        }
    }

    /// The immediate dominator of `b` (`b` itself for the entry), or `None`
    /// if `b` is unreachable.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).  Unreachable blocks dominate
    /// nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(cfg: &Cfg, idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId) -> BlockId {
    let rpo = |x: BlockId| cfg.rpo_index(x).expect("reachable");
    while a != b {
        while rpo(a) > rpo(b) {
            a = idom[a.index()].expect("processed");
        }
        while rpo(b) > rpo(a) {
            b = idom[b.index()].expect("processed");
        }
    }
    a
}

/// The post-dominator relation, computed on the reverse CFG with a
/// virtual exit joining every `Halt` block.
///
/// Together with [`Dominators`] this gives the paper's *equivalent block*
/// test in its original form (Section 3.3, footnote 2): block `X` is
/// equivalent to block `Y` if `X` dominates `Y` and `Y` post-dominates
/// `X` — exactly when a join can keep its ANDed predicate without
/// duplication.  The scheduler's path-condition merge implements the same
/// relation algebraically; this structure exists for analyses and tests
/// that want the classic formulation.
#[derive(Clone, PartialEq, Debug)]
pub struct PostDominators {
    /// Immediate post-dominator per block; `None` for blocks that cannot
    /// reach an exit (or are unreachable) and for exit blocks themselves
    /// (whose ipdom is the virtual exit).
    ipdom: Vec<Option<BlockId>>,
    exits: Vec<BlockId>,
}

impl PostDominators {
    /// Computes post-dominators for `prog`.
    pub fn new(prog: &psb_isa::ScalarProgram, cfg: &Cfg) -> PostDominators {
        let n = cfg.len();
        let exits: Vec<BlockId> = (0..n)
            .map(|i| BlockId(i as u32))
            .filter(|&b| cfg.is_reachable(b) && cfg.succs(b).is_empty())
            .collect();
        let _ = prog;
        // Reverse post-order on the reverse graph = order blocks by
        // decreasing forward RPO works for reducible graphs; iterate to a
        // fixed point regardless.
        let order: Vec<BlockId> = {
            let mut v: Vec<BlockId> = cfg.rpo().to_vec();
            v.reverse();
            v
        };
        let mut ipdom: Vec<Option<BlockId>> = vec![None; n];
        // Exit blocks post-dominate themselves (ipdom = virtual exit,
        // modelled as self).
        for &e in &exits {
            ipdom[e.index()] = Some(e);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                if exits.contains(&b) {
                    continue;
                }
                let mut new: Option<BlockId> = None;
                for &s in cfg.succs(b) {
                    if ipdom[s.index()].is_none() {
                        continue;
                    }
                    new = Some(match new {
                        None => s,
                        Some(cur) => Self::meet(cfg, &ipdom, &exits, s, cur),
                    });
                }
                if new != ipdom[b.index()] {
                    ipdom[b.index()] = new;
                    changed = true;
                }
            }
        }
        PostDominators { ipdom, exits }
    }

    fn meet(
        cfg: &Cfg,
        ipdom: &[Option<BlockId>],
        exits: &[BlockId],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        // Walk both chains toward the virtual exit; order by *reverse*
        // forward-RPO (later blocks first on the reverse graph).
        let key = |x: BlockId| cfg.rpo_index(x).unwrap_or(usize::MAX);
        loop {
            if a == b {
                return a;
            }
            // Two distinct exit blocks meet only at the virtual exit;
            // represent that by whichever comes later (a canonical pick).
            let a_exit = exits.contains(&a);
            let b_exit = exits.contains(&b);
            if a_exit && b_exit {
                return if key(a) > key(b) { a } else { b };
            }
            if !a_exit && key(a) < key(b) {
                a = ipdom[a.index()].expect("processed");
            } else if !b_exit && key(b) < key(a) {
                b = ipdom[b.index()].expect("processed");
            } else if !a_exit {
                a = ipdom[a.index()].expect("processed");
            } else {
                b = ipdom[b.index()].expect("processed");
            }
        }
    }

    /// Whether `a` post-dominates `b` (reflexive): every path from `b` to
    /// an exit passes through `a`.
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// The immediate post-dominator of `b` (itself for exit blocks).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{CmpOp, ProgramBuilder, Reg, ScalarProgram};

    /// Diamond with a loop:
    /// entry → head; head → {left, right}; left/right → join; join → head | exit.
    fn build() -> (ScalarProgram, Vec<BlockId>) {
        let mut pb = ProgramBuilder::new("dom");
        let ids: Vec<BlockId> = (0..6).map(|_| pb.new_block()).collect();
        let (entry, head, left, right, join, exit) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let r = Reg::new(1);
        pb.block_mut(entry).jump(head);
        pb.block_mut(head).branch(CmpOp::Lt, r, 0, left, right);
        pb.block_mut(left).jump(join);
        pb.block_mut(right).jump(join);
        pb.block_mut(join).branch(CmpOp::Lt, r, 10, head, exit);
        pb.block_mut(exit).halt();
        pb.set_entry(entry);
        (pb.finish().unwrap(), ids)
    }

    #[test]
    fn diamond_dominators() {
        let (p, ids) = build();
        let cfg = Cfg::new(&p);
        let dom = Dominators::new(&cfg);
        let (entry, head, left, right, join, exit) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        assert_eq!(dom.idom(head), Some(entry));
        assert_eq!(dom.idom(left), Some(head));
        assert_eq!(dom.idom(right), Some(head));
        assert_eq!(dom.idom(join), Some(head)); // not left or right
        assert_eq!(dom.idom(exit), Some(join));
        assert!(dom.dominates(head, exit));
        assert!(dom.dominates(head, head));
        assert!(!dom.dominates(left, join));
        assert!(!dom.dominates(exit, head));
    }

    #[test]
    fn diamond_postdominators() {
        let (p, ids) = build();
        let cfg = Cfg::new(&p);
        let pdom = PostDominators::new(&p, &cfg);
        let (entry, head, left, right, join, exit) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        assert!(pdom.post_dominates(join, head));
        assert!(pdom.post_dominates(join, left));
        assert!(pdom.post_dominates(exit, entry));
        assert!(!pdom.post_dominates(left, head));
        assert!(!pdom.post_dominates(head, join));
        // The paper's equivalent-block relation: head ~ join.
        let dom = Dominators::new(&cfg);
        assert!(dom.dominates(head, join) && pdom.post_dominates(join, head));
        assert!(
            !dom.dominates(left, join),
            "an arm is not equivalent to the join"
        );
        assert_eq!(pdom.ipdom(left), Some(join));
        assert_eq!(pdom.ipdom(right), Some(join));
    }

    #[test]
    fn unreachable_has_no_idom() {
        let mut pb = ProgramBuilder::new("u");
        let a = pb.new_block();
        let dead = pb.new_block();
        pb.block_mut(a).halt();
        pb.block_mut(dead).halt();
        pb.set_entry(a);
        let p = pb.finish().unwrap();
        let dom = Dominators::new(&Cfg::new(&p));
        assert_eq!(dom.idom(dead), None);
        assert!(!dom.dominates(a, dead));
    }
}
