//! Loop unrolling — the compilation technique the paper names as the way
//! to feed machines wider than four issue slots (Section 4.2.2: "other
//! compilation techniques which expose more parallelism (e.g. loop
//! unrolling) may be required").
//!
//! Unrolling duplicates a natural loop's body `factor − 1` times and
//! chains the copies: the back edge of copy *k* targets the header of
//! copy *k+1*, and only the last copy branches back to the original
//! header.  Each copy keeps its own exit branches, so any trip count
//! remains correct (no strip-mining or prologue is needed).  The payoff
//! for the predicating architecture is structural: scheduling scopes can
//! never follow a back edge, so an unrolled body lets one *region* span
//! several former iterations.

use crate::cfg::Cfg;
use crate::dom::Dominators;
use psb_isa::{BlockId, ScalarProgram};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A natural loop: its header and its body blocks (header included).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaturalLoop {
    /// The loop header (the back edges' target, dominating the body).
    pub header: BlockId,
    /// All blocks of the loop, header included.
    pub body: BTreeSet<BlockId>,
}

/// Finds the natural loops of `prog` (one per header; multiple back edges
/// to one header merge into one loop).  Irreducible retreating edges —
/// where the target does not dominate the source — are skipped.
pub fn find_loops(prog: &ScalarProgram, cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut by_header: HashMap<BlockId, BTreeSet<BlockId>> = HashMap::new();
    for &b in cfg.rpo() {
        for &s in cfg.succs(b) {
            if dom.dominates(s, b) {
                // Back edge b -> s: collect the natural loop of (b, s).
                let body = by_header.entry(s).or_default();
                body.insert(s);
                let mut work = VecDeque::new();
                if body.insert(b) {
                    work.push_back(b);
                }
                while let Some(x) = work.pop_front() {
                    for &p in cfg.preds(x) {
                        if p != s && body.insert(p) {
                            work.push_back(p);
                        }
                    }
                }
            }
        }
    }
    let mut loops: Vec<NaturalLoop> = by_header
        .into_iter()
        .map(|(header, body)| NaturalLoop { header, body })
        .collect();
    loops.sort_by_key(|l| l.header);
    let _ = prog;
    loops
}

impl NaturalLoop {
    /// Whether this loop contains another loop's header (i.e. is not
    /// innermost).
    pub fn contains_other(&self, loops: &[NaturalLoop]) -> bool {
        loops
            .iter()
            .any(|l| l.header != self.header && self.body.contains(&l.header))
    }
}

/// Unrolls every innermost natural loop of `prog` by `factor` (a factor
/// of 1 returns the program unchanged).  The transform is purely
/// structural — dynamic semantics are identical — so the scalar golden
/// model of the unrolled program equals the original's.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn unroll_loops(prog: &ScalarProgram, factor: usize) -> ScalarProgram {
    assert!(factor >= 1, "unroll factor must be at least 1");
    if factor == 1 {
        return prog.clone();
    }
    let cfg = Cfg::new(prog);
    let dom = Dominators::new(&cfg);
    let loops = find_loops(prog, &cfg, &dom);
    let innermost: Vec<&NaturalLoop> = loops.iter().filter(|l| !l.contains_other(&loops)).collect();

    let mut out = prog.clone();
    for l in innermost {
        unroll_one(&mut out, l, factor);
    }
    out.validate()
        .expect("unrolling preserves structural validity");
    out
}

fn unroll_one(prog: &mut ScalarProgram, l: &NaturalLoop, factor: usize) {
    // Map each body block to its copy id per unroll step.
    let body: Vec<BlockId> = l.body.iter().copied().collect();
    let mut copies: Vec<HashMap<BlockId, BlockId>> = Vec::with_capacity(factor - 1);
    for _ in 1..factor {
        let mut map = HashMap::new();
        for &b in &body {
            let new_id = BlockId(prog.blocks.len() as u32);
            prog.blocks.push(prog.blocks[b.index()].clone());
            map.insert(b, new_id);
        }
        copies.push(map);
    }
    // Rewire each copy: internal edges stay inside the copy; the back
    // edge (an edge to the header) advances to the next copy's header —
    // the last copy returns to the original header.  Exits are untouched.
    for (k, map) in copies.iter().enumerate() {
        let next_header = if k + 1 < copies.len() {
            copies[k + 1][&l.header]
        } else {
            l.header
        };
        for &orig in &body {
            let copy_id = map[&orig];
            let term = prog.blocks[copy_id.index()].term;
            prog.blocks[copy_id.index()].term = term.map_targets(|t| {
                if t == l.header {
                    next_header
                } else if let Some(&c) = map.get(&t) {
                    c
                } else {
                    t
                }
            });
        }
    }
    // The original body's back edges now enter copy 1.
    let first_header = copies[0][&l.header];
    for &orig in &body {
        let term = prog.blocks[orig.index()].term;
        prog.blocks[orig.index()].term = term.map_targets(|t| {
            if t == l.header && orig != l.header {
                // Only edges *from inside the loop* are back edges; the
                // header's own self-targeting edge (a one-block loop) also
                // advances.
                first_header
            } else {
                t
            }
        });
    }
    // One-block loops: the header's edge to itself is the back edge.
    let term = prog.blocks[l.header.index()].term;
    prog.blocks[l.header.index()].term =
        term.map_targets(|t| if t == l.header { first_header } else { t });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Liveness;
    use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    /// sum += mem[16+i] for i in 0..n, with an if inside the body.
    fn loop_prog(n: i64) -> ScalarProgram {
        let mut pb = ProgramBuilder::new("unroll-me");
        pb.memory_size(128);
        for k in 0..64 {
            pb.mem_cell(16 + k, k * 3 % 17);
        }
        pb.init_reg(r(8), n);
        let entry = pb.new_block();
        let head = pb.new_block();
        let odd = pb.new_block();
        let even = pb.new_block();
        let latch = pb.new_block();
        let done = pb.new_block();
        pb.block_mut(entry).copy(r(1), 0).copy(r(2), 0).jump(head);
        pb.block_mut(head)
            .load(r(3), r(1), 16, MemTag(1))
            .alu(AluOp::And, r(4), r(3), 1)
            .branch(CmpOp::Eq, r(4), 1, odd, even);
        pb.block_mut(odd)
            .alu(AluOp::Add, r(2), r(2), r(3))
            .jump(latch);
        pb.block_mut(even)
            .alu(AluOp::Sub, r(2), r(2), r(3))
            .jump(latch);
        pb.block_mut(latch).alu(AluOp::Add, r(1), r(1), 1).branch(
            CmpOp::Lt,
            r(1),
            r(8),
            head,
            done,
        );
        pb.block_mut(done).halt();
        pb.set_entry(entry);
        pb.live_out([r(2)]);
        pb.finish().unwrap()
    }

    #[test]
    fn finds_the_loop() {
        let p = loop_prog(10);
        let cfg = Cfg::new(&p);
        let dom = Dominators::new(&cfg);
        let loops = find_loops(&p, &cfg, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId(1));
        assert_eq!(loops[0].body.len(), 4); // head, odd, even, latch
    }

    #[test]
    fn factor_one_is_identity() {
        let p = loop_prog(10);
        assert_eq!(unroll_loops(&p, 1), p);
    }

    #[test]
    fn unrolled_program_grows_and_validates() {
        let p = loop_prog(10);
        let u = unroll_loops(&p, 4);
        assert_eq!(u.blocks.len(), p.blocks.len() + 3 * 4);
        u.validate().unwrap();
        // Liveness and CFG still computable on the transformed program.
        let cfg = Cfg::new(&u);
        let _ = Liveness::new(&u, &cfg);
    }

    #[test]
    fn semantics_preserved_for_any_trip_count() {
        use psb_scalar::ScalarMachine;
        for n in [0i64, 1, 2, 3, 7, 10, 33] {
            let p = loop_prog(n.max(1)); // trip counts below 1 do-while once
            let base = ScalarMachine::run_to_completion(&p).unwrap();
            for factor in [2usize, 3, 4] {
                let u = unroll_loops(&p, factor);
                let got = ScalarMachine::run_to_completion(&u).unwrap();
                assert_eq!(
                    got.observable(&u.live_out),
                    base.observable(&p.live_out),
                    "n={n} factor={factor}"
                );
            }
        }
    }

    #[test]
    fn unrolled_loop_has_fewer_back_edge_traversals() {
        use psb_scalar::ScalarMachine;
        let p = loop_prog(32);
        let u = unroll_loops(&p, 4);
        let base = ScalarMachine::run_to_completion(&p).unwrap();
        let got = ScalarMachine::run_to_completion(&u).unwrap();
        // Same dynamic instruction count (pure duplication)...
        assert_eq!(base.dyn_instrs, got.dyn_instrs);
        // ...but the branch to the *original* header runs 4x less often.
        let (t_orig, _) = base.edge_profile.counts(BlockId(4));
        let (t_unrolled, _) = got.edge_profile.counts(BlockId(4));
        assert_eq!(t_orig, 31);
        assert_eq!(t_unrolled, 8); // original latch runs every 4th iteration
    }

    #[test]
    fn one_block_self_loop_unrolls() {
        let mut pb = ProgramBuilder::new("self");
        let entry = pb.new_block();
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block_mut(entry).copy(r(1), 0).jump(body);
        pb.block_mut(body)
            .alu(AluOp::Add, r(1), r(1), 1)
            .branch(CmpOp::Lt, r(1), 9, body, done);
        pb.block_mut(done).halt();
        pb.set_entry(entry);
        pb.live_out([r(1)]);
        let p = pb.finish().unwrap();
        let u = unroll_loops(&p, 3);
        use psb_scalar::ScalarMachine;
        let a = ScalarMachine::run_to_completion(&p).unwrap();
        let b = ScalarMachine::run_to_completion(&u).unwrap();
        assert_eq!(a.regs[1], b.regs[1]);
        assert!(u.blocks.len() > p.blocks.len());
    }
}
