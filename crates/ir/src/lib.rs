//! Analyses over scalar programs: CFG structure, dominance, and liveness.
//!
//! The instruction schedulers in `psb-sched` consume these analyses to
//! decide which code motions are legal: liveness drives register renaming
//! (a destination may only be renamed into a register dead on the
//! side-effect path, Section 2.1 of the paper), and dominance validates the
//! single-entry property of scheduling regions (Section 3.3).

#![warn(missing_docs)]

mod cfg;
mod dom;
mod liveness;
mod opt;
mod regset;
mod unroll;

pub use cfg::Cfg;
pub use dom::{Dominators, PostDominators};
pub use liveness::Liveness;
pub use opt::{copy_propagate, dead_code_eliminate, optimize};
pub use regset::RegSet;
pub use unroll::{find_loops, unroll_loops, NaturalLoop};
