//! Compact register sets as 64-bit masks.

use psb_isa::{Reg, NUM_REGS};
use std::fmt;

/// A set of general registers, stored as a bit mask.
///
/// [`NUM_REGS`] is 64, so one word suffices; the type is `Copy` and all set
/// operations are single instructions, which matters inside the dataflow
/// fixed points.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(u64);

const _: () = assert!(NUM_REGS <= 64, "RegSet packs registers into a u64");

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// A singleton set.
    pub fn of(r: Reg) -> RegSet {
        RegSet(1 << r.index())
    }

    /// Whether `r` is in the set.
    #[inline]
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Inserts `r`.
    #[inline]
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Removes `r`.
    #[inline]
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.index());
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    #[inline]
    #[must_use]
    pub fn minus(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the members in index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..NUM_REGS)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(Reg::new)
    }

    /// The lowest-numbered register not in the set and not below `min`,
    /// if any — used to pick renaming targets.
    pub fn first_free(self, min: usize) -> Option<Reg> {
        (min..NUM_REGS)
            .find(|i| self.0 & (1 << i) == 0)
            .map(Reg::new)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Reg::new(3));
        s.insert(Reg::new(40));
        assert!(s.contains(Reg::new(3)));
        assert!(!s.contains(Reg::new(4)));
        assert_eq!(s.len(), 2);
        s.remove(Reg::new(3));
        assert!(!s.contains(Reg::new(3)));
    }

    #[test]
    fn set_algebra() {
        let a: RegSet = [Reg::new(1), Reg::new(2)].into_iter().collect();
        let b: RegSet = [Reg::new(2), Reg::new(3)].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersect(b), RegSet::of(Reg::new(2)));
        assert_eq!(a.minus(b), RegSet::of(Reg::new(1)));
    }

    #[test]
    fn iteration_order() {
        let s: RegSet = [Reg::new(5), Reg::new(1), Reg::new(63)]
            .into_iter()
            .collect();
        let v: Vec<usize> = s.iter().map(Reg::index).collect();
        assert_eq!(v, vec![1, 5, 63]);
    }

    #[test]
    fn first_free_respects_min() {
        let s: RegSet = [Reg::new(32), Reg::new(33)].into_iter().collect();
        assert_eq!(s.first_free(32), Some(Reg::new(34)));
        assert_eq!(s.first_free(0), Some(Reg::new(0)));
        let full: RegSet = (0..NUM_REGS).map(Reg::new).collect();
        assert_eq!(full.first_free(0), None);
    }
}
