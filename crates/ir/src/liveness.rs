//! Backward liveness dataflow over registers.

use crate::cfg::Cfg;
use crate::regset::RegSet;
use psb_isa::{BlockId, ScalarProgram};

/// Per-block live-in/live-out register sets.
///
/// The schedulers use live-in sets at off-path scope exits to decide when a
/// hoisted instruction's destination must be renamed: a code motion is
/// *illegal* when the moved operation overwrites a register whose previous
/// value is live on another path (Section 2.1 of the paper).
#[derive(Clone, PartialEq, Debug)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
    use_set: Vec<RegSet>,
    def_set: Vec<RegSet>,
}

impl Liveness {
    /// Computes liveness for `prog`.  The program's `live_out` registers
    /// are treated as used at every `Halt`.
    pub fn new(prog: &ScalarProgram, cfg: &Cfg) -> Liveness {
        let n = prog.blocks.len();
        let exit_live: RegSet = prog.live_out.iter().copied().collect();
        let mut use_set = vec![RegSet::EMPTY; n];
        let mut def_set = vec![RegSet::EMPTY; n];
        for (i, b) in prog.blocks.iter().enumerate() {
            let (mut uses, mut defs) = (RegSet::EMPTY, RegSet::EMPTY);
            for op in &b.instrs {
                for r in op.used_regs() {
                    if !defs.contains(r) {
                        uses.insert(r);
                    }
                }
                if let Some(d) = op.def_reg() {
                    defs.insert(d);
                }
            }
            for r in b.term.used_regs() {
                if !defs.contains(r) {
                    uses.insert(r);
                }
            }
            use_set[i] = uses;
            def_set[i] = defs;
        }

        let mut live_in = vec![RegSet::EMPTY; n];
        let mut live_out = vec![RegSet::EMPTY; n];
        let mut changed = true;
        while changed {
            changed = false;
            // Backward problem: iterate post-order (reverse of RPO).
            for &b in cfg.rpo().iter().rev() {
                let i = b.index();
                let mut out = if cfg.succs(b).is_empty() {
                    exit_live
                } else {
                    RegSet::EMPTY
                };
                for &s in cfg.succs(b) {
                    out = out.union(live_in[s.index()]);
                }
                let inn = use_set[i].union(out.minus(def_set[i]));
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness {
            live_in,
            live_out,
            use_set,
            def_set,
        }
    }

    /// Registers live at the entry of `b`.
    pub fn live_in(&self, b: BlockId) -> RegSet {
        self.live_in[b.index()]
    }

    /// Registers live at the exit of `b`.
    pub fn live_out(&self, b: BlockId) -> RegSet {
        self.live_out[b.index()]
    }

    /// Registers read in `b` before any redefinition in `b`.
    pub fn uses(&self, b: BlockId) -> RegSet {
        self.use_set[b.index()]
    }

    /// Registers defined in `b`.
    pub fn defs(&self, b: BlockId) -> RegSet {
        self.def_set[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn diamond_liveness() {
        // entry: r1 = r2 + 1; branch on r1 → left | right
        // left:  r3 = r1 * 2 → join
        // right: r3 = 7     → join      (r1 dead on this path after branch)
        // join:  halt, live_out = {r3}
        let mut pb = ProgramBuilder::new("live");
        let entry = pb.new_block();
        let left = pb.new_block();
        let right = pb.new_block();
        let join = pb.new_block();
        pb.block_mut(entry)
            .alu(AluOp::Add, r(1), r(2), 1)
            .branch(CmpOp::Lt, r(1), 0, left, right);
        pb.block_mut(left).alu(AluOp::Mul, r(3), r(1), 2).jump(join);
        pb.block_mut(right).copy(r(3), 7).jump(join);
        pb.block_mut(join).halt();
        pb.set_entry(entry);
        pb.live_out([r(3)]);
        let p = pb.finish().unwrap();
        let cfg = Cfg::new(&p);
        let lv = Liveness::new(&p, &cfg);

        assert!(lv.live_in(entry).contains(r(2)));
        assert!(!lv.live_in(entry).contains(r(1)));
        assert!(lv.live_in(left).contains(r(1)));
        assert!(
            !lv.live_in(right).contains(r(1)),
            "r1 dead on the right path"
        );
        assert!(lv.live_out(left).contains(r(3)));
        assert!(lv.live_in(join).contains(r(3)));
        assert!(!lv.live_out(join).contains(r(1)));
    }

    #[test]
    fn loop_carried_liveness() {
        // head: r1 = r1 + r2; branch r1 < 10 → head | exit
        let mut pb = ProgramBuilder::new("loop");
        let head = pb.new_block();
        let exit = pb.new_block();
        pb.block_mut(head).alu(AluOp::Add, r(1), r(1), r(2)).branch(
            CmpOp::Lt,
            r(1),
            10,
            head,
            exit,
        );
        pb.block_mut(exit).halt();
        pb.set_entry(head);
        pb.live_out([r(1)]);
        let p = pb.finish().unwrap();
        let lv = Liveness::new(&p, &Cfg::new(&p));
        // Both r1 and r2 are live around the loop.
        assert!(lv.live_in(head).contains(r(1)));
        assert!(lv.live_in(head).contains(r(2)));
        assert!(lv.live_out(head).contains(r(2)));
    }

    #[test]
    fn use_before_def_vs_def_first() {
        let mut pb = ProgramBuilder::new("ud");
        let b = pb.new_block();
        // r1 defined then used: not upward-exposed. r2 used first: exposed.
        pb.block_mut(b)
            .copy(r(1), 5)
            .alu(AluOp::Add, r(3), r(1), r(2))
            .store(r(3), 0, r(1), MemTag::ANY)
            .halt();
        pb.set_entry(b);
        pb.memory_size(64);
        let p = pb.finish().unwrap();
        let lv = Liveness::new(&p, &Cfg::new(&p));
        assert!(!lv.uses(b).contains(r(1)));
        assert!(lv.uses(b).contains(r(2)));
        assert!(lv.defs(b).contains(r(1)));
        assert!(lv.defs(b).contains(r(3)));
    }
}
