//! Control-flow graph structure over a scalar program.

use psb_isa::{BlockId, ScalarProgram};

/// Predecessor/successor structure and traversal orders for a program.
#[derive(Clone, PartialEq, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<usize>,
    entry: BlockId,
}

impl Cfg {
    /// Builds the CFG of `prog`.
    pub fn new(prog: &ScalarProgram) -> Cfg {
        let n = prog.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, b) in prog.blocks.iter().enumerate() {
            let id = BlockId(i as u32);
            for s in b.term.successors() {
                succs[i].push(s);
                preds[s.index()].push(id);
            }
        }
        // Post-order DFS from the entry; unreachable blocks are excluded
        // from the orders but keep (empty or partial) pred/succ entries.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(prog.entry, 0)];
        visited[prog.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < succs[b.index()].len() {
                let s = succs[b.index()][*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
            entry: prog.entry,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `b`, taken edge first.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`, in block order.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Reverse post-order over reachable blocks (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse post-order, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.index()];
        (i != usize::MAX).then_some(i)
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Whether edge `from → to` is a retreating edge in reverse post-order
    /// (for reducible CFGs: a loop back edge).
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        match (self.rpo_index(from), self.rpo_index(to)) {
            (Some(f), Some(t)) => t <= f,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{CmpOp, ProgramBuilder, Reg};

    /// entry → loop(head → body → head) → exit, plus an unreachable block.
    fn build() -> (ScalarProgram, BlockId, BlockId, BlockId, BlockId) {
        let mut pb = ProgramBuilder::new("cfg");
        let entry = pb.new_block();
        let head = pb.new_block();
        let body = pb.new_block();
        let exit = pb.new_block();
        let dead = pb.new_block();
        pb.block_mut(entry).jump(head);
        pb.block_mut(head)
            .branch(CmpOp::Lt, Reg::new(1), 10, body, exit);
        pb.block_mut(body).jump(head);
        pb.block_mut(exit).halt();
        pb.block_mut(dead).halt();
        pb.set_entry(entry);
        (pb.finish().unwrap(), entry, head, body, exit)
    }

    #[test]
    fn preds_and_succs() {
        let (p, entry, head, body, exit) = build();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.succs(head), &[body, exit]);
        assert_eq!(cfg.preds(head), &[entry, body]);
        assert_eq!(cfg.preds(entry), &[] as &[BlockId]);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (p, entry, head, ..) = build();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.rpo()[0], entry);
        assert!(cfg.rpo_index(entry).unwrap() < cfg.rpo_index(head).unwrap());
        assert_eq!(cfg.rpo().len(), 4); // dead block excluded
    }

    #[test]
    fn unreachable_detected() {
        let (p, ..) = build();
        let cfg = Cfg::new(&p);
        assert!(!cfg.is_reachable(BlockId(4)));
        assert!(cfg.is_reachable(BlockId(0)));
    }

    #[test]
    fn back_edge_detected() {
        let (p, _, head, body, exit) = build();
        let cfg = Cfg::new(&p);
        assert!(cfg.is_back_edge(body, head));
        assert!(!cfg.is_back_edge(head, body));
        assert!(!cfg.is_back_edge(head, exit));
    }
}
