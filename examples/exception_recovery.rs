//! The future-condition recovery scheme of Section 3.5, on the paper's
//! Figure 5 example: two speculative loads fault; one exception commits
//! and is handled during re-execution, the other is ignored because its
//! predicate is false under the future condition.
//!
//! ```text
//! cargo run --example exception_recovery
//! ```

use psb::core::{Event, MachineConfig, VliwMachine};
use psb::isa::{
    AluOp, CmpOp, CondReg, MemImage, MemTag, MultiOp, Op, Predicate, Reg, Slot, SlotOp, Src,
    VliwProgram,
};

fn main() {
    let r = Reg::new;
    let c = CondReg::new;
    let p = Predicate::always;

    let load = |rd, base: Reg, off| {
        SlotOp::Op(Op::Load {
            rd,
            base: Src::reg(base),
            offset: off,
            tag: MemTag::ANY,
        })
    };
    let one = |slot| MultiOp::new(vec![slot]);

    // Figure 5's region, one instruction per word (single-issue example).
    let words = vec![
        // i1: alw r1 = r2
        one(Slot::alw(SlotOp::Op(Op::Copy {
            rd: r(1),
            src: Src::reg(r(2)),
        }))),
        // i2: alw c0 = r3 < 0
        one(Slot::alw(SlotOp::Op(Op::SetCond {
            c: c(0),
            cmp: CmpOp::Lt,
            a: Src::reg(r(3)),
            b: Src::imm(0),
        }))),
        // i3: c0 r2 = load(r2)
        one(Slot::new(p().and_pos(c(0)), load(r(2), r(2), 0))),
        // i4: c0&c1 r3 = load(r4)   — will fault on a cold page
        one(Slot::new(
            p().and_pos(c(0)).and_pos(c(1)),
            load(r(3), r(4), 0),
        )),
        // i5: c0&!c1 r5 = load(r6)  — will fault too
        one(Slot::new(
            p().and_pos(c(0)).and_neg(c(1)),
            load(r(5), r(6), 0),
        )),
        // i6: c0&c1 r7 = r7 + r3.s
        one(Slot::new(
            p().and_pos(c(0)).and_pos(c(1)),
            SlotOp::Op(Op::Alu {
                op: AluOp::Add,
                rd: r(7),
                a: Src::reg(r(7)),
                b: Src::shadow(r(3)),
            }),
        )),
        // i7: alw c1 = r2 > r8      — commits the buffered exception on r3
        one(Slot::alw(SlotOp::Op(Op::SetCond {
            c: c(1),
            cmp: CmpOp::Gt,
            a: Src::reg(r(2)),
            b: Src::reg(r(8)),
        }))),
        one(Slot::alw(SlotOp::Jump { target: 8 })),
        one(Slot::alw(SlotOp::Halt)),
    ];

    let mut memory = MemImage::zeroed(64);
    memory.set(10, 30); // *r2 -> 30, so c1 = (30 > 20) = true
    memory.set(12, 42); // i4's page, once mapped
    memory.set(14, 7); // i5's page, never needed
    let prog = VliwProgram {
        name: "figure5".into(),
        words,
        region_starts: vec![0, 8],
        num_conds: 4,
        init_regs: vec![
            (r(2), 10),
            (r(3), -1), // c0 = true
            (r(4), 12),
            (r(6), 14),
            (r(7), 100),
            (r(8), 20),
        ],
        memory,
        live_out: vec![r(3), r(7)],
    };

    println!("Figure 5 region:\n{prog}");

    let mut cfg = MachineConfig::two_issue().with_events();
    cfg.fault_once_addrs.insert(12);
    cfg.fault_once_addrs.insert(14);
    cfg.fault_penalty = 5;
    let res = VliwMachine::run_program(&prog, cfg).expect("recovery completes");

    println!("event log:");
    for e in &res.events {
        println!("  {e}");
    }
    println!();
    println!("recoveries taken:   {}", res.recoveries);
    println!(
        "faults handled:     {} (i4's only — i5's is squashed)",
        res.faults_handled
    );
    println!("r3 = {}  (i4 re-executed after handling)", res.regs[3]);
    println!(
        "r7 = {}  (i6 re-executed with the recovered operand)",
        res.regs[7]
    );
    println!(
        "r5 = {}  (i5's exception ignored under the future condition)",
        res.regs[5]
    );

    assert_eq!(res.recoveries, 1);
    assert_eq!(res.faults_handled, 1);
    assert_eq!(res.regs[3], 42);
    assert_eq!(res.regs[7], 142);
    assert_eq!(res.regs[5], 0);
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::RecoveryStart { .. })));
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::RecoveryEnd { .. })));
}
