//! Quickstart: build a small program, schedule it with the paper's region
//! predicating model, and compare against the scalar baseline.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use psb::compile::{compile_fresh, CompileRequest, ProfileSource};
use psb::core::MachineConfig;
use psb::isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};
use psb::scalar::{ScalarConfig, ScalarMachine};
use psb::sched::{Model, SchedConfig};

fn main() {
    // A little branchy kernel: sum positive table entries, square the
    // negatives, 64 iterations.
    let r = Reg::new;
    let (i, acc, x, sq, n) = (r(1), r(2), r(3), r(4), r(8));
    let mut pb = ProgramBuilder::new("quickstart");
    pb.memory_size(128);
    for k in 0..64 {
        pb.mem_cell(16 + k, if k % 3 == 0 { -k } else { k });
    }
    pb.init_reg(n, 64);

    let entry = pb.new_block();
    let body = pb.new_block();
    let pos = pb.new_block();
    let neg = pb.new_block();
    let next = pb.new_block();
    let done = pb.new_block();
    pb.block_mut(entry).copy(i, 0).copy(acc, 0).jump(body);
    pb.block_mut(body)
        .load(x, i, 16, MemTag(1))
        .branch(CmpOp::Ge, x, 0, pos, neg);
    pb.block_mut(pos).alu(AluOp::Add, acc, acc, x).jump(next);
    pb.block_mut(neg)
        .alu(AluOp::Mul, sq, x, x)
        .alu(AluOp::Add, acc, acc, sq)
        .jump(next);
    pb.block_mut(next)
        .alu(AluOp::Add, i, i, 1)
        .branch(CmpOp::Lt, i, n, body, done);
    pb.block_mut(done).halt();
    pb.set_entry(entry);
    pb.live_out([acc]);
    let program = pb.finish().expect("valid program");

    // 1. Scalar baseline (and training profile — same input here).
    let scalar = ScalarMachine::new(&program, ScalarConfig::default())
        .run()
        .expect("scalar run");
    println!(
        "scalar machine:   {:>6} cycles, acc = {}",
        scalar.cycles, scalar.regs[2]
    );

    // 2. Compile (profile -> schedule -> decode) for the predicating
    //    machine and run.
    let art = compile_fresh(&CompileRequest {
        program: &program,
        profile: ProfileSource::Provided(&scalar.edge_profile),
        sched: SchedConfig::new(Model::RegionPred),
    })
    .expect("compile");
    println!(
        "\nscheduled code ({} words, artifact {}):\n{}",
        art.program.words.len(),
        art.hash_hex(),
        art.program
    );

    let result = art.run(MachineConfig::default()).expect("vliw run");
    println!(
        "region predicating: {:>4} cycles, acc = {}",
        result.cycles, result.regs[2]
    );
    assert_eq!(result.regs[2], scalar.regs[2], "same architectural result");
    println!(
        "speedup: {:.2}x  (executed {} ops, squashed {})",
        scalar.cycles as f64 / result.cycles as f64,
        result.ops_executed,
        result.ops_squashed
    );
}
