//! The paper's closing remark, as a runnable study: Figure 8 shows an
//! 8-issue machine barely beating a 4-issue one, and the authors point to
//! loop unrolling as the missing compilation technique.  This example
//! sweeps the unroll factor on one kernel and watches the 8-issue machine
//! fill up.
//!
//! ```text
//! cargo run --release --example unrolling_study
//! ```

use psb::compile::{compile_fresh, CompileRequest, ProfileSource};
use psb::core::MachineConfig;
use psb::ir::unroll_loops;
use psb::isa::Resources;
use psb::scalar::{ScalarConfig, ScalarMachine};
use psb::sched::{Model, SchedConfig};

fn main() {
    let name = "espresso";
    let size = 1024;
    let base = psb::workloads::by_name(name, 1234, size).expect("known workload");
    let train = psb::workloads::by_name(name, 11, size).expect("known workload");
    let scalar_cycles = ScalarMachine::new(&base.program, ScalarConfig::default())
        .run()
        .unwrap()
        .cycles;

    println!("{name} on the 8-issue full-issue machine (K = 8, D = 8)\n");
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>16}",
        "unroll", "vliw cycles", "speedup", "static ops", "max pred depth"
    );
    for factor in 1..=6 {
        let train_u = unroll_loops(&train.program, factor);
        let eval_u = unroll_loops(&base.program, factor);
        let mut cfg = SchedConfig::new(Model::RegionPred);
        cfg.issue_width = 8;
        cfg.resources = Resources::full_issue(8);
        cfg.num_conds = 8;
        cfg.depth = 8;
        cfg.max_blocks = 48;
        let art = compile_fresh(&CompileRequest {
            program: &eval_u,
            profile: ProfileSource::Train {
                program: &train_u,
                config: ScalarConfig::default(),
            },
            sched: cfg,
        })
        .expect("compiles");
        let stats = &art.sched_stats;
        let mut mc = MachineConfig::full_issue(8);
        mc.store_buffer_size = 32;
        let res = art.run(mc).expect("runs");
        assert_eq!(
            res.observable(&eval_u.live_out),
            ScalarMachine::new(&eval_u, ScalarConfig::default())
                .run()
                .unwrap()
                .observable(&eval_u.live_out),
            "unroll {factor} diverged"
        );
        println!(
            "{:>8} {:>12} {:>9.2}x {:>12} {:>16}",
            factor,
            res.cycles,
            scalar_cycles as f64 / res.cycles as f64,
            stats.ops,
            stats.max_pred_depth()
        );
    }
    println!(
        "\nEach extra copy of the loop body deepens the regions (more\n\
         conditions in flight) and widens the per-cycle work — exactly the\n\
         effect the paper predicted loop unrolling would have."
    );
}
