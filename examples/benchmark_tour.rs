//! Tour of the six benchmark kernels: run each under every scheduling
//! model at a small size and print the speedup matrix — a miniature of
//! the paper's Figures 6 and 7 in one table.
//!
//! ```text
//! cargo run --release --example benchmark_tour
//! ```

use psb::compile::ArtifactCache;
use psb::eval::{geometric_mean, run_workload, EvalParams};
use psb::sched::Model;

fn main() {
    let params = EvalParams::quick();
    let cache = ArtifactCache::new();
    println!(
        "speedup over the scalar machine (size {}, {}-issue, K={}, D={})\n",
        params.size, params.issue_width, params.num_conds, params.depth
    );
    print!("{:<10}", "program");
    for m in Model::ALL {
        print!(" {:>14}", m.name());
    }
    println!();

    let mut per_model: Vec<Vec<f64>> = vec![Vec::new(); Model::ALL.len()];
    for name in ["compress", "eqntott", "espresso", "grep", "li", "nroff"] {
        let res = run_workload(name, &Model::ALL, &params, &cache);
        print!("{:<10}", res.name);
        for (i, m) in res.models.iter().enumerate() {
            print!(" {:>14.2}", m.speedup);
            per_model[i].push(m.speedup);
        }
        println!();
    }
    print!("{:<10}", "geomean");
    for sp in &per_model {
        print!(" {:>14.2}", geometric_mean(sp));
    }
    println!();
    println!(
        "\nThe ordering the paper reports: global < squashing < trace < boosting\n\
         < trace predicating < region predicating, with region predicating\n\
         pulling ahead on the branch-unpredictable kernels (compress, eqntott,\n\
         espresso, li) and tying trace predicating on grep and nroff."
    );
}
