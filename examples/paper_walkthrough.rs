//! The paper's running example, end to end: the scalar code of Figure 3,
//! the 2-issue predicated schedule of Figure 4, and the machine-state
//! transition of Table 1, reproduced cycle by cycle on the simulator.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use psb::core::{MachineConfig, VliwMachine};
use psb::eval::render_table1;
use psb::isa::{
    AluOp, CmpOp, CondReg, MemImage, MemTag, MultiOp, Op, Predicate, Reg, Slot, SlotOp, Src,
    VliwProgram,
};

fn main() {
    let r = Reg::new;
    let c = CondReg::new;
    let p = Predicate::always;
    let c0c1 = p().and_pos(c(0)).and_pos(c(1));

    let alu = |op, rd, a, b| SlotOp::Op(Op::Alu { op, rd, a, b });
    let load = |rd, base, off| {
        SlotOp::Op(Op::Load {
            rd,
            base,
            offset: off,
            tag: MemTag::ANY,
        })
    };
    let store = |base, off, v| {
        SlotOp::Op(Op::Store {
            base,
            offset: off,
            value: v,
            tag: MemTag::ANY,
        })
    };
    let setc = |cr, cmp, a, b| SlotOp::Op(Op::SetCond { c: cr, cmp, a, b });

    // Figure 4's schedule, one word per line (i-numbers from the paper).
    let words = vec![
        // (1) i1: alw r1 = load(r2)       i15: c0&c1 r2 = r2 - 1
        MultiOp::new(vec![
            Slot::alw(load(r(1), Src::reg(r(2)), 0)),
            Slot::new(c0c1, alu(AluOp::Sub, r(2), Src::reg(r(2)), Src::imm(1))),
        ]),
        // (2) i10: !c0 r5 = load array    i14: c0&c1 store(r7) = r5
        MultiOp::new(vec![
            Slot::new(p().and_neg(c(0)), load(r(5), Src::imm(6), 0)),
            Slot::new(c0c1, store(Src::reg(r(7)), 0, Src::reg(r(5)))),
        ]),
        // (3) i2: alw r3 = r1 + 1         i16: c0&c1 r7 = r2.s << 1
        MultiOp::new(vec![
            Slot::alw(alu(AluOp::Add, r(3), Src::reg(r(1)), Src::imm(1))),
            Slot::new(c0c1, alu(AluOp::Sll, r(7), Src::shadow(r(2)), Src::imm(1))),
        ]),
        // (4) i6: c0 r6 = load(r3)        i3: alw c0 = r3 < r4
        MultiOp::new(vec![
            Slot::new(p().and_pos(c(0)), load(r(6), Src::reg(r(3)), 0)),
            Slot::alw(setc(c(0), CmpOp::Lt, Src::reg(r(3)), Src::reg(r(4)))),
        ]),
        // (5) i11: alw c2 = r2 < 0
        MultiOp::new(vec![
            Slot::alw(setc(c(2), CmpOp::Lt, Src::reg(r(2)), Src::imm(0))),
            Slot::alw(SlotOp::Op(Op::Nop)),
        ]),
        // (6) i7: alw c1 = r5 < r6        i12: !c0&c2 j L6
        MultiOp::new(vec![
            Slot::alw(setc(c(1), CmpOp::Lt, Src::reg(r(5)), Src::reg(r(6)))),
            Slot::new(p().and_neg(c(0)).and_pos(c(2)), SlotOp::Jump { target: 8 }),
        ]),
        // (7) i9: c0&!c1 j L5             i17: c0&c1 j L8
        MultiOp::new(vec![
            Slot::new(p().and_pos(c(0)).and_neg(c(1)), SlotOp::Jump { target: 8 }),
            Slot::new(c0c1, SlotOp::Jump { target: 8 }),
        ]),
        // (8) i13: !c0&!c2 j L7
        MultiOp::new(vec![
            Slot::new(p().and_neg(c(0)).and_neg(c(2)), SlotOp::Jump { target: 8 }),
            Slot::alw(SlotOp::Op(Op::Nop)),
        ]),
        // L5/L6/L7/L8 all land here for the walkthrough.
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ];

    let mut memory = MemImage::zeroed(64);
    memory.set(4, 10); // *r2: feeds r1, then r3 = 11
    memory.set(11, 50); // *r3: feeds r6
    memory.set(6, 77); // "array"
    let prog = VliwProgram {
        name: "figure4".into(),
        words,
        region_starts: vec![0, 8],
        num_conds: 4,
        init_regs: vec![(r(2), 4), (r(4), 100), (r(5), 5), (r(7), 20)],
        memory,
        live_out: vec![r(2), r(7)],
    };

    println!("Figure 4 schedule:\n{prog}");

    let cfg = MachineConfig::two_issue().with_events();
    let res = VliwMachine::run_program(&prog, cfg).expect("the paper's example runs");

    println!("{}", render_table1(&res.events));
    println!(
        "final state: r2 = {}, r7 = {}, mem[20] = {}",
        res.regs[2],
        res.regs[7],
        res.memory.read(20).expect("valid address")
    );
    println!(
        "total cycles: {} (the paper's region completes in 7, then the halt)",
        res.cycles
    );

    // The sequence the paper walks through in Section 3.4:
    assert_eq!(res.regs[2], 3, "i15 committed: r2 = 4 - 1");
    assert_eq!(res.regs[7], 6, "i16 committed: r7 = (r2 - 1) << 1");
    assert_eq!(res.memory.read(20).unwrap(), 5, "i14's store retired");
    assert_eq!(res.regs[5], 5, "i10 squashed: r5 keeps its old value");
    assert_eq!(res.cycles, 8);
}
